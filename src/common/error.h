// Error handling primitives shared by every FUNNEL module.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions derived
// from std::runtime_error for violated preconditions that depend on runtime
// data (bad series lengths, empty groups, malformed names), and reserve
// assertions for internal logic errors.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace funnel {

/// Base class of all exceptions thrown by the FUNNEL library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters
/// non-finite input it cannot handle.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when a lookup (service, server, metric, ...) does not resolve.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const std::string& msg,
                                         std::source_location loc);
}  // namespace detail

/// Precondition check: throws InvalidArgument with context when `cond` fails.
#define FUNNEL_REQUIRE(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::funnel::detail::throw_invalid_argument(                       \
          #cond, (msg), std::source_location::current());             \
    }                                                                 \
  } while (false)

}  // namespace funnel
