# End-to-end smoke check for the tools + telemetry path:
#   funnel_generate -> funnel_detect_csv --change-minute --stats-json --trace
# The generated KPI carries 3 days of history and a level shift at the
# change minute, so the online pipeline must attribute it via the
# historical DiD (quorum 2), the stats snapshot must parse as JSON with
# the core telemetry keys, and the Chrome trace must parse with a
# traceEvents array. Also asserts: a dirty CSV (funnel_generate --faults)
# still assesses without crashing; a malformed or duplicate-timestamp CSV
# makes the tool exit non-zero (no silent skips); an unwritable --trace
# path exits 3. The --data-dir block covers the storage contract
# (docs/STORAGE.md): a fresh persistent run matches the in-memory stdout
# byte for byte, a second run recovers the store, a corrupted checkpoint
# exits 3, and --data-dir outside pipeline mode is bad usage (exit 2).
#
# Invoked by ctest as:
#   cmake -DGEN=<funnel_generate> -DDET=<funnel_detect_csv>
#         -DWORK_DIR=<scratch dir> -P tools_smoke.cmake

foreach(var GEN DET WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(csv "${WORK_DIR}/smoke_series.csv")
set(stats "${WORK_DIR}/smoke_stats.json")
set(trace "${WORK_DIR}/smoke_trace.json")

# 3 days of history before the change minute: the full-launch path runs
# the seasonality-exclusion DiD against real baseline days (quorum 2)
# instead of degrading to an inconclusive verdict.
set(change_minute 4380)
execute_process(
  COMMAND "${GEN}" --class stationary --minutes 4500 --seed 7
          --shift ${change_minute},8 --out "${csv}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_generate failed (${rc}): ${err}")
endif()

execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --stats-json "${stats}" --trace "${trace}"
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_detect_csv failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "verdict: change has impact")
  message(FATAL_ERROR "expected an impact verdict, stdout was: ${out}")
endif()

file(READ "${stats}" json)
string(JSON enabled ERROR_VARIABLE jerr GET "${json}" enabled)
if(jerr)
  message(FATAL_ERROR "stats JSON did not parse: ${jerr}")
endif()

# With FUNNEL_OBS=OFF the registry is a no-op: the snapshot still parses
# (enabled=false, empty sections) but carries no keys to check.
if(enabled)
  foreach(key
      "tsdb.store.appends"
      "funnel.online.samples_ingested"
      "funnel.online.verdicts_confirmed"
      "pool.tasks_executed")
    string(JSON val ERROR_VARIABLE jerr GET "${json}" counters "${key}")
    if(jerr)
      message(FATAL_ERROR "stats JSON missing counter '${key}'")
    endif()
  endforeach()
  string(JSON confirmed GET "${json}" counters "funnel.online.verdicts_confirmed")
  if(confirmed LESS 1)
    message(FATAL_ERROR "pipeline confirmed no verdict (counter=${confirmed})")
  endif()
  string(JSON ttv ERROR_VARIABLE jerr GET "${json}"
         histograms "funnel.online.time_to_verdict_min" count)
  if(jerr OR ttv LESS 1)
    message(FATAL_ERROR "time_to_verdict histogram empty or missing (${jerr})")
  endif()
endif()

# The tool must announce where it wrote the side-channel outputs.
if(NOT err MATCHES "# wrote stats:" OR NOT err MATCHES "# wrote trace:")
  message(FATAL_ERROR "expected output-path notes on stderr, got: ${err}")
endif()

# The Chrome trace must be valid JSON with a traceEvents array; with the
# tracer compiled in (enabled mirrors FUNNEL_OBS) the assessment must have
# recorded spans, and every event needs the fields the trace viewer keys on.
file(READ "${trace}" tjson)
string(JSON nevents ERROR_VARIABLE jerr LENGTH "${tjson}" traceEvents)
if(jerr)
  message(FATAL_ERROR "trace JSON did not parse: ${jerr}")
endif()
if(enabled)
  if(nevents LESS 2)
    message(FATAL_ERROR "trace has ${nevents} events; expected spans")
  endif()
  math(EXPR last "${nevents} - 1")
  string(JSON ph GET "${tjson}" traceEvents ${last} ph)
  string(JSON name GET "${tjson}" traceEvents ${last} name)
  string(JSON dur ERROR_VARIABLE jerr GET "${tjson}" traceEvents ${last} dur)
  if(NOT ph STREQUAL "X" OR name STREQUAL "" OR jerr)
    message(FATAL_ERROR "trace event malformed: ph=${ph} name=${name} ${jerr}")
  endif()
  string(JSON recorded GET "${tjson}" otherData recorded)
  if(recorded LESS 1)
    message(FATAL_ERROR "trace otherData.recorded=${recorded}")
  endif()
endif()

# An unwritable --trace destination is a distinct failure (exit 3), after
# the assessment itself already ran.
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --trace "${WORK_DIR}/no_such_dir/t.json"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "unwritable --trace path must exit 3, got ${rc}")
endif()

# Dirty telemetry must not crash the pipeline: the same KPI through the
# deterministic fault injector (drops, NaN bursts, duplicate + late
# delivery) still assesses end to end and prints a verdict line — either
# the clean attribution or an explicit inconclusive degradation.
set(dirty "${WORK_DIR}/smoke_dirty.csv")
execute_process(
  COMMAND "${GEN}" --class stationary --minutes 4500 --seed 7
          --shift ${change_minute},8
          --faults "drop=0.02,nan=0.01x4,dup=0.03,late=0.02x5"
          --fault-seed 11 --out "${dirty}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_generate --faults failed (${rc}): ${err}")
endif()
if(NOT err MATCHES "injected faults")
  message(FATAL_ERROR "expected an injected-faults note on stderr: ${err}")
endif()
execute_process(
  COMMAND "${DET}" "${dirty}" --change-minute ${change_minute}
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dirty CSV must still assess, got (${rc}): ${err}")
endif()
if(NOT out MATCHES "verdict: ")
  message(FATAL_ERROR "dirty run printed no verdict, stdout was: ${out}")
endif()

# Non-monotonic timestamps are a corrupt export, not a gap: the reader
# rejects them with a line-numbered diagnostic and the tool exits non-zero.
set(dup "${WORK_DIR}/smoke_dup.csv")
file(WRITE "${dup}" "0,1.0\n1,1.5\n1,2.0\n2,2.5\n")
execute_process(COMMAND "${DET}" "${dup}"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "duplicate-timestamp CSV must exit non-zero")
endif()
if(NOT err MATCHES "line 3")
  message(FATAL_ERROR "expected a line-numbered diagnostic, got: ${err}")
endif()

# A CSV that does not parse must fail the run, not be skipped silently.
set(bad "${WORK_DIR}/smoke_bad.csv")
file(WRITE "${bad}" "garbage,not,a,csv\nrow2\n")
execute_process(COMMAND "${DET}" "${bad}"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "malformed CSV must exit non-zero")
endif()

# --data-dir (docs/STORAGE.md): a fresh persistent run must reproduce the
# in-memory verdict byte for byte on stdout, and leave a recoverable store
# (checkpoint + WAL + segment) behind.
set(data_dir "${WORK_DIR}/smoke_store")
file(REMOVE_RECURSE "${data_dir}")
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --data-dir "${data_dir}"
  OUTPUT_VARIABLE pout RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--data-dir run failed (${rc}): ${err}")
endif()
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
  OUTPUT_VARIABLE mout RESULT_VARIABLE rc ERROR_QUIET)
if(NOT pout STREQUAL mout)
  message(FATAL_ERROR
    "--data-dir stdout differs from the in-memory run:\n${pout}\nvs\n${mout}")
endif()
if(NOT EXISTS "${data_dir}/checkpoint")
  message(FATAL_ERROR "--data-dir run left no checkpoint in ${data_dir}")
endif()

# A second run recovers the store instead of re-inserting the CSV history
# and must still reach an impact verdict.
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --data-dir "${data_dir}"
  OUTPUT_VARIABLE rout RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "recovered --data-dir run failed (${rc}): ${err}")
endif()
if(NOT rout MATCHES "verdict: change has impact")
  message(FATAL_ERROR "recovered run lost the verdict, stdout was: ${rout}")
endif()

# Corruption beyond what WAL-tail truncation repairs (a damaged checkpoint)
# is the storage contract's distinct failure: exit 3, like an unopenable
# output file.
file(WRITE "${data_dir}/checkpoint" "garbage, not a checkpoint")
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --data-dir "${data_dir}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "corrupt --data-dir must exit 3, got ${rc}: ${err}")
endif()

# --data-dir outside pipeline mode (or with several CSVs) is bad usage.
execute_process(
  COMMAND "${DET}" "${csv}" --data-dir "${WORK_DIR}/smoke_store2"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--data-dir without --change-minute must exit 2, got ${rc}")
endif()

# Persistence counters surface uniformly (docs/OBSERVABILITY.md): a
# --data-dir run's --stats-json must carry the wal.* counters, the WAL
# commit-latency histogram, and the queue-capacity gauges /healthz keys on.
set(wal_stats "${WORK_DIR}/smoke_wal_stats.json")
set(wal_dir "${WORK_DIR}/smoke_wal_store")
file(REMOVE_RECURSE "${wal_dir}")
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute}
          --data-dir "${wal_dir}" --stats-json "${wal_stats}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--data-dir --stats-json run failed (${rc}): ${err}")
endif()
if(enabled)
  file(READ "${wal_stats}" wjson)
  foreach(key "funnel.wal.records" "funnel.wal.batches" "funnel.wal.bytes")
    string(JSON val ERROR_VARIABLE jerr GET "${wjson}" counters "${key}")
    if(jerr OR val LESS 1)
      message(FATAL_ERROR "stats JSON counter '${key}' missing or zero (${jerr})")
    endif()
  endforeach()
  string(JSON commits ERROR_VARIABLE jerr GET "${wjson}"
         histograms "funnel.wal.commit_us" count)
  if(jerr OR commits LESS 1)
    message(FATAL_ERROR "funnel.wal.commit_us histogram empty or missing (${jerr})")
  endif()
  foreach(key "funnel.wal.queue_capacity" "funnel.persist.segments")
    string(JSON val ERROR_VARIABLE jerr GET "${wjson}" gauges "${key}")
    if(jerr)
      message(FATAL_ERROR "stats JSON gauge '${key}' missing (${jerr})")
    endif()
  endforeach()
endif()

# --serve misuse is bad usage (exit 2), diagnosed before any work: holding
# the process open needs a listening plane, and the one-shot --scores dump
# has nothing to serve.
execute_process(
  COMMAND "${DET}" "${csv}" --change-minute ${change_minute} --serve
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--serve without --http-port must exit 2, got ${rc}")
endif()
if(NOT err MATCHES "--http-port")
  message(FATAL_ERROR "expected a --http-port diagnostic, got: ${err}")
endif()
execute_process(
  COMMAND "${DET}" "${csv}" --scores --http-port auto --serve
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--serve with --scores must exit 2, got ${rc}")
endif()
execute_process(
  COMMAND "${DET}" "${csv}" --port-file "${WORK_DIR}/p"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--port-file without --http-port must exit 2, got ${rc}")
endif()

message(STATUS "tools smoke OK (telemetry enabled=${enabled})")
