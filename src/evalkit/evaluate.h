// Method evaluation harness (§4.2-§4.4).
//
// Replicates the paper's protocol: for every item (S_i, c_i, k_i) the method
// examines the KPI around the change and declares whether a KPI change was
// induced by the software change. Detection-only methods (improved SST,
// CUSUM, MRLS) cannot exclude "other factors", so their declaration is
// simply "alarm at/after the change" — exactly why their precision collapses
// under confounders and seasonality in Table 1. FUNNEL's declaration is the
// full Fig. 3 verdict.
//
// Items belonging to no-effect changes can be up-weighted by
// `negative_scale` — the §4.2.1 x86 extrapolation of the 72 sampled
// unchanged changes to the 6194 in the population.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "detect/scorer.h"
#include "detect/sliding.h"
#include "evalkit/dataset.h"
#include "evalkit/metrics.h"
#include "funnel/assessor.h"

namespace funnel::evalkit {

/// Per-method evaluation outcome, split by KPI class as in Table 1.
struct MethodResult {
  std::string method;
  std::map<tsdb::KpiClass, ConfusionMatrix> by_class;
  /// Detection delays in minutes for correctly-flagged positive items
  /// (feeds the Fig. 5 CCDF).
  std::vector<double> delays;

  ConfusionMatrix total() const;
};

/// A detection-only method under evaluation: a scorer factory (fresh scorer
/// per item — scorers may be stateful) plus its tuned alarm policy.
struct DetectorSpec {
  std::string name;
  std::function<std::unique_ptr<detect::ChangeScorer>()> make_scorer;
  detect::AlarmPolicy policy;
};

/// Evaluate a detection-only method over every item of the dataset.
/// The method sees [change - lookback, change + horizon) of the KPI and
/// declares "induced" iff an alarm fires at/after the change minute.
MethodResult evaluate_detector(const EvalDataset& ds, const DetectorSpec& spec,
                               MinuteTime lookback = 60,
                               MinuteTime horizon = 60,
                               std::uint64_t negative_scale = 1);

/// Evaluate full FUNNEL (improved IKA-SST + DiD) over the dataset.
MethodResult evaluate_funnel(const EvalDataset& ds,
                             const core::FunnelConfig& config,
                             std::uint64_t negative_scale = 1);

/// Mean per-window scoring cost in microseconds, measured by sliding the
/// scorer across `series` until at least `min_total_scores` scores have been
/// produced (Table 2's "run time per time window").
double mean_score_micros(detect::ChangeScorer& scorer,
                         std::span<const double> series,
                         std::size_t min_total_scores = 2000);

/// Table 2's last row: cores needed to score `kpis` KPIs once per minute
/// when one score takes `micros_per_window` µs.
std::uint64_t cores_for_kpis(double micros_per_window,
                             std::uint64_t kpis = 1'000'000);

}  // namespace funnel::evalkit
