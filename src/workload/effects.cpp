#include "workload/effects.h"

namespace funnel::workload {

double effect_value(const Effect& e, MinuteTime t) {
  return std::visit(
      [t](const auto& eff) -> double {
        using T = std::decay_t<decltype(eff)>;
        if constexpr (std::is_same_v<T, LevelShift>) {
          return t >= eff.start ? eff.delta : 0.0;
        } else if constexpr (std::is_same_v<T, Ramp>) {
          if (t < eff.start) return 0.0;
          if (t >= eff.end) return eff.delta;
          const double span = static_cast<double>(eff.end - eff.start);
          return span <= 0.0
                     ? eff.delta
                     : eff.delta * static_cast<double>(t - eff.start) / span;
        } else {
          static_assert(std::is_same_v<T, TransientSpike>);
          return (t >= eff.start && t < eff.start + eff.duration) ? eff.delta
                                                                  : 0.0;
        }
      },
      e);
}

MinuteTime effect_start(const Effect& e) {
  return std::visit([](const auto& eff) { return eff.start; }, e);
}

bool is_persistent(const Effect& e) {
  return !std::holds_alternative<TransientSpike>(e);
}

double EffectTimeline::value_at(MinuteTime t) const {
  double acc = 0.0;
  for (const Effect& e : effects_) acc += effect_value(e, t);
  return acc;
}

}  // namespace funnel::workload
