// Online (streaming) assessment — the deployed FUNNEL of §5.
//
// FunnelOnline subscribes to the metric store's push feed (the stand-in for
// the production database's subscription tool, §2.2). When a change is
// registered for watching, it primes one OnlineDetector per impact-set KPI
// with the recent history and then scores each new pushed sample as it
// arrives. Alarms raised at/after the deployment minute trigger causality
// determination as soon as `min_did_window` post-change minutes exist —
// which is how the §5.2 ad-system incident was confirmed within ~10 minutes
// instead of the 1.5 hours manual assessment took. After `horizon` minutes
// the watch finalizes into an AssessmentReport.
//
// Threading (full model in docs/CONCURRENCY.md, "Online assessor"): with a
// synchronous store, everything runs on the producing thread, as before.
// With an async store (StoreOptions::ingest_queue_capacity > 0) the sample
// handler — and therefore every verdict/report callback — runs on the
// store's dispatcher thread. Register watches and callbacks before
// streaming samples (or quiesce with store.flush() first); read
// active_watches() only after a flush(). Destruction is safe while samples
// are in flight: unsubscribing from an async store blocks until the
// in-flight callback completes.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "detect/ika_sst.h"
#include "funnel/assessor.h"
#include "obs/trace.h"

namespace funnel::core {

class FunnelOnline {
 public:
  /// Fires once per KPI whose change is attributed to the software change —
  /// the operations team's page.
  using VerdictCallback =
      std::function<void(changes::ChangeId, const ItemVerdict&)>;
  /// Fires when a watch completes (horizon reached).
  using ReportCallback = std::function<void(const AssessmentReport&)>;

  /// The store must outlive this object. Store appends made while a watch
  /// is active drive the detectors via the subscription.
  FunnelOnline(FunnelConfig config, const topology::ServiceTopology& topo,
               const changes::ChangeLog& log, tsdb::MetricStore& store);
  ~FunnelOnline();

  FunnelOnline(const FunnelOnline&) = delete;
  FunnelOnline& operator=(const FunnelOnline&) = delete;

  /// Start watching a recorded change. Existing history in
  /// [change - lookback, now) primes the detectors.
  void watch(changes::ChangeId id);

  void on_verdict(VerdictCallback cb) { verdict_cb_ = std::move(cb); }
  void on_report(ReportCallback cb) { report_cb_ = std::move(cb); }

  std::size_t active_watches() const { return watches_.size(); }

 private:
  struct MetricWatch {
    tsdb::MetricId metric;
    std::unique_ptr<detect::IkaSst> scorer;
    std::unique_ptr<detect::OnlineDetector> detector;
    ItemVerdict verdict;
    bool pending_determination = false;  ///< alarm raised, DiD deferred
  };

  struct ChangeWatch {
    changes::ChangeId change_id = 0;
    ImpactSet set;
    std::map<tsdb::MetricId, MetricWatch> metrics;
    MinuteTime deadline = 0;  ///< change time + horizon
    /// Root span of the watch's trace: opened at watch() on the control
    /// thread, finished at finalize() — on the store's dispatcher thread
    /// when the store is async, which is exactly what DetachedSpan permits.
    /// Priming and every determination span parent under its context.
    obs::DetachedSpan trace;
  };

  void handle_sample(const tsdb::MetricId& id, MinuteTime t, double value);
  void try_determination(ChangeWatch& watch, MetricWatch& mw, MinuteTime now);
  void finalize(changes::ChangeId id);

  /// Stamp the confirming minute on the verdict and record the online
  /// verdict counters + time-to-verdict (the paper's rapidity metric).
  void note_determined(const changes::SoftwareChange& change, MetricWatch& mw,
                       MinuteTime minute);

  FunnelConfig config_;
  const topology::ServiceTopology& topo_;
  const changes::ChangeLog& log_;
  tsdb::MetricStore& store_;
  Funnel batch_;  ///< reuses the Fig. 3 determination logic

  std::map<changes::ChangeId, ChangeWatch> watches_;
  tsdb::SubscriptionId subscription_ = 0;
  bool subscribed_ = false;
  VerdictCallback verdict_cb_;
  ReportCallback report_cb_;
};

}  // namespace funnel::core
