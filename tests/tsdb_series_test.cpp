// Tests for the 1-minute-binned TimeSeries and aggregation.
#include "tsdb/series.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace funnel::tsdb {
namespace {

TEST(TimeSeries, StartEndAndAppend) {
  TimeSeries s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.start_time(), 100);
  EXPECT_EQ(s.end_time(), 100);
  s.append(1.0);
  s.append(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.end_time(), 102);
  EXPECT_DOUBLE_EQ(s.at(100), 1.0);
  EXPECT_DOUBLE_EQ(s.at(101), 2.0);
}

TEST(TimeSeries, AtValidatesRange) {
  TimeSeries s(10, {1.0, 2.0});
  EXPECT_THROW((void)s.at(9), InvalidArgument);
  EXPECT_THROW((void)s.at(12), InvalidArgument);
  EXPECT_TRUE(s.contains(11));
  EXPECT_FALSE(s.contains(12));
}

TEST(TimeSeries, AppendAtFillsGapsWithNan) {
  TimeSeries s(0);
  s.append_at(0, 1.0);
  s.append_at(3, 2.0);  // minutes 1, 2 become NaN
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(std::isnan(s.at(1)));
  EXPECT_TRUE(std::isnan(s.at(2)));
  EXPECT_DOUBLE_EQ(s.at(3), 2.0);
}

TEST(TimeSeries, AppendAtRejectsPast) {
  TimeSeries s(0);
  s.append_at(0, 1.0);
  s.append_at(1, 2.0);
  EXPECT_THROW(s.append_at(1, 3.0), InvalidArgument);
  EXPECT_THROW(s.append_at(0, 3.0), InvalidArgument);
}

TEST(TimeSeries, FirstExplicitAppendDefinesStart) {
  TimeSeries s(0);
  s.append_at(500, 9.0);
  EXPECT_EQ(s.start_time(), 500);
  EXPECT_DOUBLE_EQ(s.at(500), 9.0);
}

TEST(TimeSeries, UpsertToleratesDuplicatesAndLateArrivals) {
  // The dirty-feed ingest contract: appends past the frontier behave like
  // append_at; a late sample fills the NaN slot its gap left behind; a
  // duplicate of a stored value is ignored (first write wins); anything
  // before start_time is too old to place.
  TimeSeries s(0);
  EXPECT_EQ(s.upsert_at(0, 1.0), TimeSeries::Upsert::kAppended);
  EXPECT_EQ(s.upsert_at(3, 4.0), TimeSeries::Upsert::kAppended);
  EXPECT_TRUE(std::isnan(s.at(1)));
  EXPECT_EQ(s.upsert_at(1, 2.0), TimeSeries::Upsert::kFilled);  // late
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);
  EXPECT_EQ(s.upsert_at(1, 7.0), TimeSeries::Upsert::kDuplicate);
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);  // first write wins
  EXPECT_EQ(s.upsert_at(3, 9.0), TimeSeries::Upsert::kDuplicate);
  EXPECT_DOUBLE_EQ(s.at(3), 4.0);
  EXPECT_EQ(s.size(), 4u);
}

TEST(TimeSeries, UpsertRejectsPreStartSamples) {
  TimeSeries s(0);
  ASSERT_EQ(s.upsert_at(100, 1.0), TimeSeries::Upsert::kAppended);
  EXPECT_EQ(s.upsert_at(99, 2.0), TimeSeries::Upsert::kTooOld);
  EXPECT_EQ(s.start_time(), 100);
  EXPECT_EQ(s.size(), 1u);
}

TEST(TimeSeries, UpsertOnEmptySeriesDefinesStart) {
  TimeSeries s(0);
  EXPECT_EQ(s.upsert_at(50, 5.0), TimeSeries::Upsert::kAppended);
  EXPECT_EQ(s.start_time(), 50);
  EXPECT_EQ(s.end_time(), 51);
}

TEST(TimeSeries, UpsertIsDeliveryOrderInsensitive) {
  // Determinism under reordering: once the first sample anchors the start,
  // any delivery order of the rest yields the same series — the
  // chaos-harness invariant that makes dirty-feed runs reproducible.
  const std::vector<std::pair<MinuteTime, double>> samples{
      {0, 1.0}, {1, 2.0}, {2, 3.0}, {3, 4.0}, {4, 5.0}};
  TimeSeries fwd(0), shuffled(0);
  for (const auto& [t, v] : samples) fwd.upsert_at(t, v);
  for (std::size_t i : {0u, 4u, 2u, 1u, 3u}) {
    shuffled.upsert_at(samples[i].first, samples[i].second);
  }
  ASSERT_EQ(fwd.size(), shuffled.size());
  for (MinuteTime t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(fwd.at(t), shuffled.at(t)) << "minute " << t;
  }
}

TEST(TimeSeries, ViewAndSlice) {
  TimeSeries s(10, {1.0, 2.0, 3.0, 4.0});
  const auto v = s.view(11, 13);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  EXPECT_EQ(s.slice(10, 14), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW((void)s.view(9, 12), InvalidArgument);
  EXPECT_THROW((void)s.view(12, 15), InvalidArgument);
  EXPECT_TRUE(s.slice(12, 12).empty());
}

TEST(TimeSeries, CoversAndClean) {
  TimeSeries s(0, {1.0, std::nan(""), 3.0});
  EXPECT_TRUE(s.covers(0, 3));
  EXPECT_FALSE(s.covers(0, 4));
  EXPECT_TRUE(s.clean(0, 1));
  EXPECT_FALSE(s.clean(0, 2));
  EXPECT_TRUE(s.clean(2, 3));
  EXPECT_FALSE(s.clean(0, 4));  // not covered
}

TEST(AggregateMean, AveragesOverlappingSeries) {
  const TimeSeries a(0, {1.0, 2.0, 3.0});
  const TimeSeries b(0, {3.0, 4.0, 5.0});
  const std::vector<const TimeSeries*> parts{&a, &b};
  const TimeSeries m = aggregate_mean(parts, 0, 3);
  EXPECT_DOUBLE_EQ(m.at(0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2), 4.0);
}

TEST(AggregateMean, SkipsMissingMinutesAndNan) {
  const TimeSeries a(0, {1.0, std::nan(""), 3.0});
  const TimeSeries b(1, {10.0, 20.0});  // covers minutes 1, 2
  const std::vector<const TimeSeries*> parts{&a, &b};
  const TimeSeries m = aggregate_mean(parts, 0, 4);
  EXPECT_DOUBLE_EQ(m.at(0), 1.0);    // only a
  EXPECT_DOUBLE_EQ(m.at(1), 10.0);   // a is NaN here
  EXPECT_DOUBLE_EQ(m.at(2), 11.5);   // both
  EXPECT_TRUE(std::isnan(m.at(3)));  // nobody
}

TEST(AggregateMean, NullPointersIgnored) {
  const TimeSeries a(0, {2.0});
  const std::vector<const TimeSeries*> parts{nullptr, &a};
  const TimeSeries m = aggregate_mean(parts, 0, 1);
  EXPECT_DOUBLE_EQ(m.at(0), 2.0);
}

TEST(AggregateMean, EmptyInputsProduceNan) {
  const std::vector<const TimeSeries*> parts;
  const TimeSeries m = aggregate_mean(parts, 5, 7);
  EXPECT_EQ(m.start_time(), 5);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(std::isnan(m.at(5)));
  EXPECT_THROW((void)aggregate_mean(parts, 7, 5), InvalidArgument);
}

}  // namespace
}  // namespace funnel::tsdb
