// Crash-replay determinism: the tentpole guarantee of the persistent
// segment store (docs/STORAGE.md §6). An online assessor killed at an
// arbitrary point and restarted against the same data_dir must replay the
// WAL tail and converge to the exact bytes an uninterrupted run produces —
// same final report JSON, same verdict-journal file. The kill is simulated
// with MetricStore::crash_for_testing (queued WAL records abandoned, as in
// a real SIGKILL) plus a torn half-frame appended to the WAL, and the kill
// point is randomized across seeds so the sweep crosses every recovery
// regime: mid-history (no watch yet), mid-watch (snapshot restore), and
// post-finalize (journal rewind + re-emission).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "tsdb/persist/wal.h"
#include "tsdb/store.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

namespace fs = std::filesystem;

constexpr MinuteTime kDay = kMinutesPerDay;

FunnelConfig test_config() {
  FunnelConfig cfg;
  cfg.baseline_days = 3;
  return cfg;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// One WAL-visible action of the input stream: a sample arrival or a watch
// registration. Action i is WAL seq i+1 in every run (single producer), so
// MetricStore::recovered_seq() maps directly to a resume index.
struct Action {
  bool is_watch = false;
  tsdb::MetricId metric;
  MinuteTime t = 0;
  double value = 0.0;
};

// The dark-launch scenario of funnel_online_test, materialized into a flat
// deterministic action list so every run (reference, killed, resumed)
// consumes the identical stream.
struct ReplayScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  MinuteTime tc = 4 * kDay + 300;
  changes::ChangeId change_id = 0;
  std::size_t watch_index = 0;
  std::vector<Action> actions;

  ReplayScenario() {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    std::vector<std::pair<tsdb::MetricId,
                          std::unique_ptr<workload::KpiStream>>> streams;
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      auto stream = std::make_unique<workload::KpiStream>(
          workload::make_stationary(p, rng.split()));
      if (s == "s1" || s == "s2") {
        stream->add_effect(workload::LevelShift{tc, 8.0});
      }
      streams.emplace_back(tsdb::server_metric(s, "mem"), std::move(stream));
    }
    for (MinuteTime t = 0; t < tc; ++t) {
      for (auto& [id, stream] : streams) {
        actions.push_back({false, id, t, stream->sample(t)});
      }
    }
    watch_index = actions.size();
    Action watch;
    watch.is_watch = true;
    actions.push_back(watch);
    for (MinuteTime t = tc; t < tc + 61; ++t) {
      for (auto& [id, stream] : streams) {
        actions.push_back({false, id, t, stream->sample(t)});
      }
    }
  }
};

struct RunResult {
  std::string report_json;
  std::string journal_bytes;
};

// Uninterrupted reference: a fully in-memory store (persistence must never
// change a verdict) driving the online assessor end to end.
RunResult reference_run(const ReplayScenario& sc, const fs::path& dir) {
  const fs::path journal_path = dir / "journal.jsonl";
  std::string report;
  {
    tsdb::MetricStore store;
    obs::Journal journal(journal_path.string());
    FunnelConfig cfg = test_config();
    cfg.journal = &journal;
    FunnelOnline online(cfg, sc.topo, sc.log, store);
    online.on_report(
        [&](const AssessmentReport& r) { report = to_json(r); });
    for (const Action& a : sc.actions) {
      if (a.is_watch) {
        online.watch(sc.change_id);
      } else {
        store.append(a.metric, a.t, a.value);
      }
    }
    journal.flush();
  }
  EXPECT_FALSE(report.empty());
  return {report, slurp(journal_path)};
}

// Checkpoint cadence shared by every killed run: periodic during history,
// plus one mid-watch checkpoint that captures a live detector snapshot.
bool checkpoint_due(const ReplayScenario& sc, std::size_t processed) {
  return processed % 6000 == 0 || processed == sc.watch_index + 1 + 160;
}

// Run with persistence, kill after `kill_at` actions, recover from disk,
// replay the WAL tail, resume the input stream, and return the final
// outputs for comparison against the reference.
RunResult killed_run(const ReplayScenario& sc, const fs::path& dir,
                     std::size_t kill_at) {
  const fs::path data_dir = dir / "data";
  const fs::path journal_path = dir / "journal.jsonl";
  tsdb::StoreOptions options;
  options.data_dir = data_dir.string();

  // --- Phase 1: run until the kill. ---------------------------------------
  {
    tsdb::MetricStore store(options);
    obs::Journal journal(journal_path.string());
    FunnelConfig cfg = test_config();
    cfg.journal = &journal;
    FunnelOnline online(cfg, sc.topo, sc.log, store);
    online.on_report([](const AssessmentReport&) {});
    for (std::size_t i = 0; i < kill_at; ++i) {
      const Action& a = sc.actions[i];
      if (a.is_watch) {
        online.watch(sc.change_id);
      } else {
        store.append(a.metric, a.t, a.value);
      }
      if (checkpoint_due(sc, i + 1)) {
        journal.flush();
        store.checkpoint(online.snapshot_state(), journal.written());
      }
    }
    store.crash_for_testing();
  }
  // A real kill can also tear the frame being written: append half a valid
  // frame to the live WAL; recovery must truncate it.
  for (const auto& entry : fs::directory_iterator(data_dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) != 0) continue;
    tsdb::persist::WalRecord junk;
    junk.metric = tsdb::server_metric("s1", "mem");
    junk.seq = kill_at + 1;
    const std::string frame = tsdb::persist::encode_wal_record(junk);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }

  // --- Phase 2: recover, replay the tail, resume the stream. --------------
  std::string report;
  {
    tsdb::StoreOptions recover_options = options;
    recover_options.hand_off_tail = true;
    tsdb::MetricStore store(recover_options);
    // Rewind the journal to the checkpoint's event count; replaying the
    // tail re-emits everything after it, byte for byte.
    obs::repair_journal(journal_path.string(),
                        store.recovered_journal_events());
    obs::JournalOptions jopts;
    jopts.truncate = false;
    obs::Journal journal(journal_path.string(), jopts);
    FunnelConfig cfg = test_config();
    cfg.journal = &journal;
    FunnelOnline online(cfg, sc.topo, sc.log, store);
    online.on_report(
        [&](const AssessmentReport& r) { report = to_json(r); });
    online.restore_state(store.recovered_watch_state());
    for (const tsdb::persist::WalRecord& rec : store.recovered_tail()) {
      if (rec.type == tsdb::persist::WalRecordType::kWatch) {
        online.replay_watch(rec.change_id);
      } else {
        store.replay(rec);
      }
    }
    // recovered_seq says how much of the input stream survived the kill;
    // everything after it replays from the source.
    for (std::size_t i = static_cast<std::size_t>(store.recovered_seq());
         i < sc.actions.size(); ++i) {
      const Action& a = sc.actions[i];
      if (a.is_watch) {
        online.watch(sc.change_id);
      } else {
        store.append(a.metric, a.t, a.value);
      }
    }
    journal.flush();
  }
  EXPECT_FALSE(report.empty());
  return {report, slurp(journal_path)};
}

TEST(PersistReplay, KillAtRandomizedPointsIsByteIdentical) {
  const ReplayScenario sc;
  const fs::path root =
      fs::path(::testing::TempDir()) / "funnel_persist_replay";
  fs::remove_all(root);
  fs::create_directories(root / "ref");
  const RunResult ref = reference_run(sc, root / "ref");

  // Kill points spanning the three recovery regimes, plus one drawn at
  // random: mid-history (no watch to restore), mid-watch (live detector
  // snapshot), and post-finalize (journal rewound past emitted events).
  std::vector<std::size_t> kill_points = {
      10000,
      sc.watch_index + 1 + 200,
      sc.actions.size() - 3,
  };
  Rng rng(2026);
  kill_points.push_back(static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(sc.watch_index - 100),
      static_cast<std::int64_t>(sc.actions.size() - 1))));

  int seed = 0;
  for (const std::size_t kill_at : kill_points) {
    const fs::path dir = root / ("seed" + std::to_string(seed++));
    fs::create_directories(dir);
    const RunResult got = killed_run(sc, dir, kill_at);
    EXPECT_EQ(got.report_json, ref.report_json) << "kill_at=" << kill_at;
    EXPECT_EQ(got.journal_bytes, ref.journal_bytes) << "kill_at=" << kill_at;
  }
}

TEST(PersistReplay, JournalRepairKeepsExactEventPrefix) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF: append is a no-op";
  const fs::path dir =
      fs::path(::testing::TempDir()) / "persist_journal_repair";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "journal.jsonl";
  {
    obs::Journal journal(path.string());
    for (int i = 0; i < 3; ++i) {
      obs::JournalEvent e;
      e.source = "online";
      e.change_id = static_cast<std::uint64_t>(i);
      e.metric = "server:s1/mem";
      e.cause = "no-kpi-change";
      journal.append(e);
    }
    journal.flush();
  }
  {  // torn trailing line, as a crash would leave
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"v\":1,\"torn";
  }
  EXPECT_EQ(obs::repair_journal(path.string(), 2), 2u);
  std::size_t bad = 0;
  const auto events = obs::read_journal(path.string(), &bad);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(events[1].change_id, 1u);
  // Asking for more events than the file holds keeps what is there.
  EXPECT_EQ(obs::repair_journal(path.string(), 99), 2u);
}

}  // namespace
}  // namespace funnel::core
