#include "funnel/assessor.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "detect/ika_sst.h"
#include "did/groups.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace funnel::core {

Funnel::Funnel(FunnelConfig config, const topology::ServiceTopology& topo,
               const changes::ChangeLog& log, const tsdb::MetricStore& store)
    : config_(config), topo_(topo), log_(log), store_(store) {
  if (ThreadPool::resolve_threads(config_.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    pool_->set_stats(config_.stats);
  }
}

Funnel::~Funnel() = default;

AssessmentReport Funnel::assess(changes::ChangeId id) const {
  const obs::ScopedTimer total(config_.stats, "funnel.assess.total_us");
  const changes::SoftwareChange& change = log_.get(id);
  AssessmentReport report;
  report.change_id = id;
  report.change_time = change.time;
  {
    const obs::ScopedTimer span(config_.stats,
                                "funnel.assess.impact_set_us");
    report.impact_set = identify_impact_set(change, topo_);
  }
  const std::vector<tsdb::MetricId> metrics =
      impact_metrics(report.impact_set, store_);
  report.items.resize(metrics.size());
  if (pool_ == nullptr || metrics.size() < 2) {
    detect::IkaSst scorer(config_.geometry);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      report.items[i] =
          assess_metric_with(scorer, change, report.impact_set, metrics[i]);
    }
  } else {
    // One scorer per execution slot: the warm-start basis stays
    // thread-local, and assess_metric_with resets it before every KPI so a
    // slot's previous stream never bleeds into the next score.
    std::vector<detect::IkaSst> scorers(pool_->slots(),
                                        detect::IkaSst(config_.geometry));
    pool_->parallel_for(
        0, metrics.size(), [&](std::size_t i, std::size_t slot) {
          report.items[i] = assess_metric_with(scorers[slot], change,
                                               report.impact_set, metrics[i]);
        });
  }
  if (config_.stats != nullptr) {
    // Report assembly: tally the delivered verdicts into the pipeline
    // counters. Telemetry reads the report; it never writes into it.
    const obs::ScopedTimer span(config_.stats, "funnel.assess.assemble_us");
    config_.stats->add("funnel.assess.changes_assessed");
    config_.stats->add("funnel.assess.kpis_scored", report.items.size());
    for (const ItemVerdict& v : report.items) {
      if (v.kpi_change_detected) {
        config_.stats->add("funnel.assess.alarms_raised");
      }
      config_.stats->add(std::string("funnel.assess.verdicts.") +
                         to_string(v.cause));
    }
  }
  return report;
}

std::vector<AssessmentReport> Funnel::assess_window(MinuteTime t0,
                                                    MinuteTime t1) const {
  const obs::ScopedTimer total(config_.stats,
                               "funnel.assess_window.total_us");
  const std::vector<changes::ChangeId> ids = log_.in_window(t0, t1);
  std::vector<AssessmentReport> out(ids.size());
  if (pool_ == nullptr || ids.size() < 2) {
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = assess(ids[i]);
  } else {
    pool_->parallel_for(0, ids.size(), [&](std::size_t i, std::size_t) {
      out[i] = assess(ids[i]);
    });
  }
  if (config_.stats != nullptr) {
    config_.stats->add("funnel.assess_window.batches");
  }
  return out;
}

ItemVerdict Funnel::assess_metric(const changes::SoftwareChange& change,
                                  const ImpactSet& set,
                                  const tsdb::MetricId& metric) const {
  detect::IkaSst scorer(config_.geometry);
  return assess_metric_with(scorer, change, set, metric);
}

ItemVerdict Funnel::assess_metric_with(detect::IkaSst& scorer,
                                       const changes::SoftwareChange& change,
                                       const ImpactSet& set,
                                       const tsdb::MetricId& metric) const {
  // The scorer may have been warm-started on a different KPI stream; a
  // stale basis would silently change scores (and with them verdicts).
  scorer.reset();

  ItemVerdict verdict;
  verdict.metric = metric;

  const MinuteTime tc = change.time;
  const auto w = static_cast<MinuteTime>(scorer.window_size());

  // Copy the assessment window under the shard's reader lock; scoring then
  // runs lock-free, and concurrent ingestion cannot tear the read.
  MinuteTime t0 = 0;
  std::vector<double> slice;
  store_.read(metric, [&](const tsdb::TimeSeries& series) {
    t0 = std::max(series.start_time(), tc - config_.lookback);
    const MinuteTime t1 = std::min(series.end_time(), tc + config_.horizon);
    if (t1 - t0 >= w) slice = series.slice(t0, t1);
  });
  if (slice.empty()) return verdict;  // not enough data to score even once

  // Per-KPI detection stage (runs on a pool worker in the parallel path —
  // the shard-per-thread registry absorbs the concurrent recording). The
  // span covers scoring + alarm scan only; determination has its own span.
  std::vector<detect::Alarm> alarms;
  {
    const obs::ScopedTimer span(config_.stats, "funnel.assess.sst_us");
    const std::vector<double> scores = detect::score_series(scorer, slice);
    alarms = detect::all_alarms(scores, scorer.window_size(), t0,
                                config_.alarm);
  }

  // Only alarms raised at/after the deployment minute are attributable.
  const auto it = std::find_if(
      alarms.begin(), alarms.end(),
      [tc](const detect::Alarm& a) { return a.minute >= tc; });
  if (it == alarms.end()) return verdict;

  verdict.kpi_change_detected = true;
  verdict.alarm = *it;
  determine_cause(change, set, metric, config_.did_window, verdict);
  return verdict;
}

void Funnel::determine_cause(const changes::SoftwareChange& change,
                             const ImpactSet& set,
                             const tsdb::MetricId& metric,
                             MinuteTime post_window,
                             ItemVerdict& verdict) const {
  const obs::ScopedTimer span(config_.stats, "funnel.assess.did_us");
  const MinuteTime tc = change.time;
  const auto omega = static_cast<std::size_t>(
      std::min<MinuteTime>(config_.did_window, post_window));

  // Fig. 3 step 4/7: affected-service KPIs never have control entities, and
  // Full Launching leaves none either -> compare against the KPI's own
  // history (§3.2.5). Otherwise compare treated vs control entities
  // (§3.2.4).
  const bool historical = is_affected_service_metric(set, metric) ||
                          !set.dark_launched;
  verdict.used_historical_control = historical;

  try {
    did::DiDResult fit;
    if (historical) {
      // Reader-locked: the online assessor runs this on the dispatcher
      // thread while producers append (docs/CONCURRENCY.md).
      fit = store_.read(metric, [&](const tsdb::TimeSeries& s) {
        return did::did_historical(s, tc, omega, config_.baseline_days);
      });
    } else {
      const auto treated = treated_group_for(set, metric);
      const auto control = control_group_for(set, metric);
      fit = did::did_dark_launch(store_, treated, control, tc, omega);
    }
    verdict.did_fit = fit;
    if (did::caused_by_change(fit, config_.did)) {
      verdict.cause = Cause::kSoftwareChange;
    } else {
      verdict.cause =
          historical ? Cause::kSeasonality : Cause::kOtherFactors;
    }
  } catch (const Error&) {
    // DiD could not run (no clean history / empty control group): the KPI
    // change cannot be ruled out, so it is delivered to the operations team
    // as change-induced (conservative; the paper always delivers dubious
    // cases, §2.2).
    verdict.cause = Cause::kSoftwareChange;
  }
}

}  // namespace funnel::core
