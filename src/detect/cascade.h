// Pre-filter cascade: cheap first-stage gates in front of the full IKA-SST
// score, so the expensive Krylov work runs only on candidate windows.
//
// Stage 0 — variance gate (provably sound). The improved-SST score is
//   score = x̂ · factor,  x̂ = max(weighted/total, novelty_floor) ≤ 1,
// so the Eq. 11 damping factor `robust_score_factor` is a per-window upper
// bound on the score. A window whose factor is already ≤ the alarm
// threshold cannot produce an exceedance no matter what the subspace terms
// do — suppressing it (score := 0) can never drop an alarm. The factor
// costs two medians and two MADs, orders of magnitude less than the
// eigen-iterations it replaces.
//
// Stage 1 — CUSUM gate (empirical, conservative). Windows that survive the
// variance gate carry a super-threshold level difference; the raw two-sided
// max-CUSUM statistic of the standardized future half (no bootstrap — the
// MERCURY bootstrap costs more than IKA itself) accumulates that difference
// within a couple of samples. A window whose max-CUSUM stays below a small
// floor is suppressed. The cascade-soundness property in
// property_invariants_test sweeps workload classes × fault specs to check
// this gate never suppresses a window the full path alarms on.
//
// Week-over-week force gate (batch path only). WoW comparisons need a full
// season of history, and a seasonal KPI reverting to last week's level can
// legitimately trip the full score while looking quiet locally — so WoW is
// wired in the *promoting* direction only: a large robust z vs one season
// earlier forces the window to be scored even if the other gates would
// suppress it. Gates may only add work, never drop alarms.
//
// Gate decisions are exported per window (for trace/provenance attrs) and
// tallied in CascadeCounters (for the stats registry).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/minute_time.h"
#include "detect/ika_sst.h"

namespace funnel::detect {

struct CascadeConfig {
  /// The alarm threshold the gates must respect: only windows that provably
  /// (stage 0) or plausibly (stage 1) cannot exceed it are suppressed.
  /// Callers must keep this in sync with AlarmPolicy::threshold.
  double sst_threshold = 0.22;
  /// Raw two-sided max-CUSUM floor (accumulated-sigma units) below which a
  /// variance-gate survivor is still suppressed. Small on purpose: recall
  /// first, speed second.
  double cusum_min = 0.25;
  /// CUSUM drift allowance k, matching CusumParams::slack.
  double cusum_slack = 0.5;
  /// Season for the week-over-week force gate; 0 disables it (e.g. for KPIs
  /// younger than one season). Batch scoring only.
  MinuteTime wow_season = 0;
  /// Robust z vs one season earlier at which WoW forces scoring.
  double wow_force = 3.0;
};

/// Per-window outcome of the cascade, in trace/provenance order.
enum class GateDecision : std::uint8_t {
  kDirty = 0,               ///< non-finite samples: NaN, nothing ran
  kVarianceSuppressed = 1,  ///< stage 0: factor ≤ threshold (sound)
  kCusumSuppressed = 2,     ///< stage 1: max-CUSUM below floor
  kForcedByWow = 3,         ///< gates said suppress, WoW overrode: scored
  kScored = 4,              ///< full IKA score ran
};

const char* to_string(GateDecision d);

/// Tallies across one scoring run; aggregated into the stats registry by
/// the assessor (funnel.cascade.* counters).
struct CascadeCounters {
  std::uint64_t windows = 0;
  std::uint64_t scored = 0;  ///< includes wow_forced
  std::uint64_t suppressed_variance = 0;
  std::uint64_t suppressed_cusum = 0;
  std::uint64_t wow_forced = 0;
  std::uint64_t dirty = 0;

  CascadeCounters& operator+=(const CascadeCounters& o);
};

/// Window-local gate check shared by the batch and online paths: returns
/// the decision for one window (never kForcedByWow/kScored distinction —
/// it reports kScored whenever the gates pass). Cheap: standardization +
/// two medians/MADs (+ one CUSUM pass for variance-gate survivors).
GateDecision gate_window(std::span<const double> window,
                         const SstGeometry& geometry,
                         const CascadeConfig& config);

/// Batch scoring with the cascade in front: same shape as score_series
/// (out[i] = score of the window starting at sample i) but suppressed
/// windows score 0.0 without touching the IKA scorer, dirty windows score
/// NaN, and the WoW force gate can override a suppression when wow_season
/// is set. Per-window decisions land in `decisions` (resized to match) and
/// tallies in `counters`; either may be null.
std::vector<double> cascade_score_series(IkaSst& scorer,
                                         std::span<const double> series,
                                         const CascadeConfig& config,
                                         CascadeCounters* counters,
                                         std::vector<GateDecision>* decisions);

/// ChangeScorer decorator for the online path: gates each window before
/// delegating to the owned IKA scorer. The WoW force gate does not apply
/// (a W-sample window carries no season of history); only the window-local
/// gates run. Suppressed windows score 0.0 — below any positive alarm
/// threshold, so OnlineDetector treats them exactly like quiet windows.
class CascadeGate final : public ChangeScorer {
 public:
  CascadeGate(std::unique_ptr<IkaSst> inner, CascadeConfig config,
              CascadeCounters* counters = nullptr);

  std::size_t window_size() const override { return inner_->window_size(); }
  std::size_t change_offset() const override {
    return inner_->change_offset();
  }
  double score(std::span<const double> window) override;
  const char* name() const override { return "funnel-ika-sst+cascade"; }

  IkaSst& inner() { return *inner_; }
  GateDecision last_decision() const { return last_decision_; }
  void reset() { inner_->reset(); }

 private:
  std::unique_ptr<IkaSst> inner_;
  CascadeConfig config_;
  CascadeCounters* counters_;  ///< optional, not owned
  GateDecision last_decision_ = GateDecision::kScored;
};

}  // namespace funnel::detect
