// funnel_triage — turn a verdict journal into triage scorecards, blame
// rankings and mined rules.
//
// Usage:
//   funnel_triage <journal.jsonl> [--json FILE] [--md FILE]
//                 [--overlap-window N] [--min-support N]
//                 [--min-confidence X] [--max-rules N]
//
// Input is the JSONL verdict journal written by the assessor (obs/journal.h;
// `funnel_detect_csv --journal`, or FunnelConfig::journal in library use).
// The tool replays the journal through the triage engine (src/triage) and
// prints the full TriageReport as JSON on stdout: per-service and per-KPI
// scorecards (regression / inconclusive / fallback-control rates, p50/p95
// time-to-verdict), blame rankings for temporally overlapping changes, and
// frequent-pattern rules over change metadata. --json FILE redirects the
// JSON to a file (stdout stays quiet); --md FILE additionally writes the
// human-facing markdown digest. Semantics of every number are specified in
// docs/TRIAGE.md.
//
// Replay is deterministic: the same journal always yields byte-identical
// JSON, and a replayed report equals the one a live engine tapped on the
// journal's writer thread would have built (the replay-determinism
// acceptance test in tests/funnel_journal_test.cpp).
//
// Knobs: --overlap-window N sets the blame clustering window in minutes
// (default 60); --min-support / --min-confidence / --max-rules gate the
// rule miner (defaults 2 / 0.5 / 50).
//
// Exit codes: 0 success; 1 the journal could not be read (missing file) or
// contained no parseable events despite being non-empty; 2 bad usage; 3 an
// output file (--json/--md) could not be opened. Skipped (corrupt) lines
// are counted on stderr but are not fatal — a crash-truncated trailing
// line is the expected signature of an interrupted run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "triage/engine.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <journal.jsonl> [--json FILE] [--md FILE]\n"
               "          [--overlap-window N] [--min-support N]\n"
               "          [--min-confidence X] [--max-rules N]\n",
               argv0);
}

struct Options {
  std::string journal_path;
  std::string json_path;
  std::string md_path;
  triage::TriageOptions triage;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--json") == 0) {
      const char* v = next("--json");
      if (v == nullptr) return false;
      opt.json_path = v;
    } else if (std::strcmp(a, "--md") == 0) {
      const char* v = next("--md");
      if (v == nullptr) return false;
      opt.md_path = v;
    } else if (std::strcmp(a, "--overlap-window") == 0) {
      const char* v = next("--overlap-window");
      if (v == nullptr) return false;
      opt.triage.blame.overlap_window = std::atoll(v);
    } else if (std::strcmp(a, "--min-support") == 0) {
      const char* v = next("--min-support");
      if (v == nullptr) return false;
      opt.triage.rules.min_support =
          static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--min-confidence") == 0) {
      const char* v = next("--min-confidence");
      if (v == nullptr) return false;
      opt.triage.rules.min_confidence = std::atof(v);
    } else if (std::strcmp(a, "--max-rules") == 0) {
      const char* v = next("--max-rules");
      if (v == nullptr) return false;
      opt.triage.rules.max_rules = static_cast<std::size_t>(std::atoll(v));
    } else if (a[0] == '-' && a[1] != '\0') {
      std::fprintf(stderr, "error: unknown flag %s\n", a);
      return false;
    } else if (opt.journal_path.empty()) {
      opt.journal_path = a;
    } else {
      std::fprintf(stderr, "error: more than one journal given\n");
      return false;
    }
  }
  if (opt.journal_path.empty()) return false;
  return true;
}

bool write_file(const std::string& path, const std::string& body,
                const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << body;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "# wrote %s: %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }

  std::size_t bad_lines = 0;
  bool ok = false;
  const std::vector<obs::JournalEvent> events =
      obs::read_journal(opt.journal_path, &bad_lines, &ok);
  if (!ok) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 opt.journal_path.c_str());
    return 1;
  }
  if (bad_lines > 0) {
    std::fprintf(stderr, "# skipped %zu unparseable line%s in %s\n",
                 bad_lines, bad_lines == 1 ? "" : "s",
                 opt.journal_path.c_str());
  }
  if (events.empty() && bad_lines > 0) {
    std::fprintf(stderr, "error: no parseable events in %s\n",
                 opt.journal_path.c_str());
    return 1;
  }

  triage::TriageEngine engine(opt.triage);
  for (const obs::JournalEvent& e : events) engine.observe(e);
  const triage::TriageReport report = engine.report();

  const std::string json = triage::to_json(report);
  if (opt.json_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else if (!write_file(opt.json_path, json + "\n", "triage json")) {
    return 3;
  }
  if (!opt.md_path.empty() &&
      !write_file(opt.md_path, triage::to_markdown(report),
                  "triage markdown")) {
    return 3;
  }
  return 0;
}
