// Table 2 — per-window computational cost and "# cores for one million
// KPIs" for FUNNEL (IKA-SST), CUSUM and MRLS (plus the exact improved and
// classic SST for reference).
//
// Methodology follows §4.3: each method scores sliding windows of a KPI
// time series single-threaded; the mean per-window time extrapolates to the
// cores needed to score one million KPIs once per minute. Absolute numbers
// are hardware-specific; the paper's Xeon E5645 figures are printed
// alongside for the ratio comparison.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "detect/cascade.h"
#include "detect/classic_sst.h"
#include "detect/cusum.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/mrls.h"
#include "evalkit/evaluate.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

std::vector<double> bench_series(std::size_t len) {
  workload::VariableParams p;  // the hardest class: no early-outs anywhere
  workload::KpiStream s(workload::make_variable(p, Rng(99)));
  return workload::render(s, 0, static_cast<MinuteTime>(len));
}

template <typename Scorer, typename... Args>
void run_scorer(benchmark::State& state, Args... args) {
  Scorer scorer(args...);
  const std::vector<double> series = bench_series(600);
  const std::size_t w = scorer.window_size();
  std::size_t i = 0;
  const std::size_t positions = series.size() - w + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scorer.score(std::span<const double>(series).subspan(i, w)));
    i = (i + 1) % positions;
  }
}

void BM_FunnelIkaSst(benchmark::State& state) {
  run_scorer<detect::IkaSst>(state, detect::SstGeometry{.omega = 9, .eta = 3});
}
BENCHMARK(BM_FunnelIkaSst);

detect::IkaParams fast_params() {
  detect::IkaParams p;
  p.warm_past = true;
  return p;
}

void BM_FunnelIkaSstFast(benchmark::State& state) {
  run_scorer<detect::IkaSst>(state, detect::SstGeometry{.omega = 9, .eta = 3},
                             fast_params());
}
BENCHMARK(BM_FunnelIkaSstFast);

void BM_FunnelCascadedFast(benchmark::State& state) {
  detect::CascadeGate scorer(
      std::make_unique<detect::IkaSst>(
          detect::SstGeometry{.omega = 9, .eta = 3}, fast_params()),
      detect::CascadeConfig{});
  const std::vector<double> series = bench_series(600);
  const std::size_t w = scorer.window_size();
  std::size_t i = 0;
  const std::size_t positions = series.size() - w + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scorer.score(std::span<const double>(series).subspan(i, w)));
    i = (i + 1) % positions;
  }
}
BENCHMARK(BM_FunnelCascadedFast);

void BM_ImprovedSstExact(benchmark::State& state) {
  run_scorer<detect::ImprovedSst>(state,
                                  detect::SstGeometry{.omega = 9, .eta = 3});
}
BENCHMARK(BM_ImprovedSstExact);

void BM_ClassicSst(benchmark::State& state) {
  run_scorer<detect::ClassicSst>(state,
                                 detect::SstGeometry{.omega = 9, .eta = 3});
}
BENCHMARK(BM_ClassicSst);

void BM_Cusum(benchmark::State& state) {
  run_scorer<detect::Cusum>(state, detect::CusumParams{});
}
BENCHMARK(BM_Cusum);

void BM_Mrls(benchmark::State& state) {
  run_scorer<detect::Mrls>(state, detect::MrlsParams{});
}
BENCHMARK(BM_Mrls);

struct PaperRef {
  const char* method;
  double paper_us;  // paper's run time per window in microseconds
  std::uint64_t paper_cores;
};

void print_summary_table() {
  std::printf(
      "\n=== Table 2: run time per window and cores for 1M KPIs ===\n\n");
  const std::vector<double> series = bench_series(600);

  struct Row {
    std::string name;
    double us;
    PaperRef ref;
  };
  std::vector<Row> rows;

  {
    detect::IkaSst s(detect::SstGeometry{.omega = 9, .eta = 3});
    rows.push_back({"FUNNEL (IKA-SST)",
                    evalkit::mean_score_micros(s, series, 4000),
                    {"FUNNEL", 401.8, 7}});
  }
  {
    detect::Cusum s{detect::CusumParams{}};
    rows.push_back({"CUSUM", evalkit::mean_score_micros(s, series, 2000),
                    {"CUSUM", 1846.0, 31}});
  }
  {
    detect::Mrls s{detect::MrlsParams{}};
    rows.push_back({"MRLS", evalkit::mean_score_micros(s, series, 300),
                    {"MRLS", 2.852e6, 47526}});
  }
  {
    detect::ImprovedSst s(detect::SstGeometry{.omega = 9, .eta = 3});
    rows.push_back({"Improved SST (exact SVD)",
                    evalkit::mean_score_micros(s, series, 2000),
                    {"-", 0.0, 0}});
  }
  {
    detect::IkaSst s(detect::SstGeometry{.omega = 9, .eta = 3},
                     fast_params());
    rows.push_back({"FUNNEL fast (--sst-fast)",
                    evalkit::mean_score_micros(s, series, 4000),
                    {"-", 0.0, 0}});
  }
  {
    detect::CascadeGate s(
        std::make_unique<detect::IkaSst>(
            detect::SstGeometry{.omega = 9, .eta = 3}, fast_params()),
        detect::CascadeConfig{});
    rows.push_back({"FUNNEL cascaded (--sst-fast)",
                    evalkit::mean_score_micros(s, series, 4000),
                    {"-", 0.0, 0}});
  }

  Table t({"method", "us/window", "cores for 1M KPIs", "paper us/window",
           "paper cores"});
  for (const Row& r : rows) {
    t.add_row({r.name, format_fixed(r.us, 1),
               std::to_string(evalkit::cores_for_kpis(r.us)),
               r.ref.paper_us > 0.0 ? format_fixed(r.ref.paper_us, 1) : "-",
               r.ref.paper_cores > 0 ? std::to_string(r.ref.paper_cores)
                                     : "-"});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double funnel_us = rows[0].us;
  const double cusum_us = rows[1].us;
  const double mrls_us = rows[2].us;
  std::printf("speed ratios (ours): FUNNEL is %.1fx faster than CUSUM, "
              "%.0fx faster than MRLS\n",
              cusum_us / funnel_us, mrls_us / funnel_us);
  std::printf("speed ratios (paper): 4.59x faster than CUSUM, "
              "7098x faster than MRLS\n");
  std::printf("hot path (bench/sst_hotpath has the full tier breakdown): "
              "cascaded is %.1fx faster than warm IKA on this workload\n",
              funnel_us / rows.back().us);
}

// The per-window numbers above are single-threaded by §4.3's methodology;
// scoring a KPI fleet is embarrassingly parallel across KPIs, which is how
// the "cores for one million KPIs" extrapolation is actually banked. This
// table scores the same fan-out with the assessment engine's ThreadPool at
// 1/2/4/8 threads — each KPI keeps its own warm-started scorer, results go
// into order-indexed slots, so every row computes the identical scores.
void print_parallel_fanout_table(const obs::Registry* stats) {
  std::printf(
      "\n=== Parallel fan-out: %s ===\n\n",
      "one IKA-SST pass over a KPI fleet, wall clock by thread count");

  constexpr std::size_t kKpis = 48;
  constexpr std::size_t kLen = 600;
  std::vector<std::vector<double>> fleet;
  fleet.reserve(kKpis);
  Rng rng(1234);
  for (std::size_t i = 0; i < kKpis; ++i) {
    workload::VariableParams p;
    workload::KpiStream s(workload::make_variable(p, rng.split()));
    fleet.push_back(workload::render(s, 0, static_cast<MinuteTime>(kLen)));
  }

  const auto score_fleet = [&fleet, stats](std::size_t threads) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<double> checksum(fleet.size(), 0.0);
    const auto score_one = [&](std::size_t i) {
      detect::IkaSst scorer(detect::SstGeometry{.omega = 9, .eta = 3});
      double acc = 0.0;
      const std::size_t w = scorer.window_size();
      for (std::size_t pos = 0; pos + w <= fleet[i].size(); ++pos) {
        acc += scorer.score(
            std::span<const double>(fleet[i]).subspan(pos, w));
      }
      checksum[i] = acc;
    };
    if (threads <= 1) {
      for (std::size_t i = 0; i < fleet.size(); ++i) score_one(i);
    } else {
      ThreadPool pool(threads);
      pool.set_stats(stats);
      pool.parallel_for(0, fleet.size(),
                        [&](std::size_t i, std::size_t) { score_one(i); });
    }
    double total = 0.0;
    for (double c : checksum) total += c;
    benchmark::DoNotOptimize(total);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  };

  score_fleet(1);  // warm up caches so the serial baseline is not penalized
  const double serial_ms = score_fleet(1);
  Table t({"threads", "wall ms", "speedup vs serial"});
  t.add_row({"1", format_fixed(serial_ms, 1), "1.00x"});
  for (const std::size_t threads : {2, 4, 8}) {
    const double ms = score_fleet(threads);
    t.add_row({std::to_string(threads), format_fixed(ms, 1),
               format_fixed(serial_ms / ms, 2) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(%zu KPIs x %zu minutes; hardware threads available: %u — "
              "speedup saturates there)\n",
              kKpis, kLen, std::thread::hardware_concurrency());
}

}  // namespace

int main(int argc, char** argv) {
  // Pull our telemetry flags out before benchmark::Initialize parses the
  // command line (it owns the remaining flags).
  bool stats = false;
  const char* stats_json = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary_table();
  const obs::Registry reg;
  const bool want_stats = stats || stats_json != nullptr;
  print_parallel_fanout_table(want_stats ? &reg : nullptr);
  bench::dump_stats(reg, stats, stats_json);
  return 0;
}
