// Online (streaming) assessment — the deployed FUNNEL of §5.
//
// FunnelOnline subscribes to the metric store's push feed (the stand-in for
// the production database's subscription tool, §2.2). When a change is
// registered for watching, it primes one OnlineDetector per impact-set KPI
// with the recent history and then scores each new pushed sample as it
// arrives. Alarms raised at/after the deployment minute trigger causality
// determination as soon as `min_did_window` post-change minutes exist —
// which is how the §5.2 ad-system incident was confirmed within ~10 minutes
// instead of the 1.5 hours manual assessment took. After `horizon` minutes
// the watch finalizes into an AssessmentReport.
//
// Threading (full model in docs/CONCURRENCY.md, "Online assessor"): with a
// synchronous store, everything runs on the producing thread, as before.
// With an async store (StoreOptions::ingest_queue_capacity > 0) the sample
// handler — and therefore every verdict/report callback — runs on the
// store's dispatcher thread. Register watches and callbacks before
// streaming samples (or quiesce with store.flush() first); read
// active_watches() only after a flush(). Destruction is safe while samples
// are in flight: unsubscribing from an async store blocks until the
// in-flight callback completes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "detect/cascade.h"
#include "detect/ika_sst.h"
#include "funnel/assessor.h"
#include "obs/trace.h"

namespace funnel::core {

class FunnelOnline {
 public:
  /// Fires once per KPI whose change is attributed to the software change —
  /// the operations team's page.
  using VerdictCallback =
      std::function<void(changes::ChangeId, const ItemVerdict&)>;
  /// Fires when a watch completes (horizon reached).
  using ReportCallback = std::function<void(const AssessmentReport&)>;

  /// The store must outlive this object. Store appends made while a watch
  /// is active drive the detectors via the subscription.
  FunnelOnline(FunnelConfig config, const topology::ServiceTopology& topo,
               const changes::ChangeLog& log, tsdb::MetricStore& store);
  ~FunnelOnline();

  FunnelOnline(const FunnelOnline&) = delete;
  FunnelOnline& operator=(const FunnelOnline&) = delete;

  /// Start watching a recorded change. Existing history in
  /// [change - lookback, now) primes the detectors.
  void watch(changes::ChangeId id);

  /// Force-finalize every watch whose deadline + config.watch_timeout has
  /// passed by wall-clock minute `now`. Watches normally finalize when a
  /// sample at/after their deadline arrives; a gap-starved feed never
  /// delivers one, so a control loop calls this periodically to stop such
  /// watches hanging forever. Still-undetermined alarms finalize as
  /// kInconclusive / kWatchTimedOut; unalarmed KPIs go through the normal
  /// quality gate (their starved feed shows up as missing coverage).
  /// Returns the number of watches finalized. Call from the streaming
  /// thread (or quiesce with store.flush() first) — same threading rule as
  /// watch().
  std::size_t expire(MinuteTime now);

  /// Re-register a watch during WAL tail replay. Identical to watch()
  /// except no new watch marker is logged — the marker driving this call is
  /// already on disk, and re-logging it would duplicate it in the next WAL.
  void replay_watch(changes::ChangeId id);

  /// Serialize every active watch — detector feed streams, verdict state,
  /// pending flags — into an opaque blob for MetricStore::checkpoint().
  /// Call only from the streaming thread (or after store.flush()); the
  /// format is versioned and private to this class (docs/STORAGE.md).
  std::string snapshot_state() const;

  /// Recreate watches from a snapshot_state() blob: each watch's detector
  /// is rebuilt by replaying its recorded feed stream (bit-identical SST /
  /// cascade / quality state), then verdicts and pending flags are
  /// overwritten from the snapshot — past determinations consumed store
  /// state that no longer exists and must not be re-derived. Call after
  /// constructing against a recovered store and *before* replaying the WAL
  /// tail. Throws tsdb::persist::StorageError on a corrupt/unknown blob.
  void restore_state(const std::string& blob);

  void on_verdict(VerdictCallback cb) { verdict_cb_ = std::move(cb); }
  void on_report(ReportCallback cb) { report_cb_ = std::move(cb); }

  std::size_t active_watches() const { return watches_.size(); }

  /// Ids of the active watches, ascending. Same threading rule as
  /// active_watches(): quiesce (store.flush()) before reading against an
  /// async store. The service layer uses this after restore_state() to
  /// rebuild its already-watched set for idempotent change re-registration.
  std::vector<changes::ChangeId> active_watch_ids() const {
    std::vector<changes::ChangeId> ids;
    ids.reserve(watches_.size());
    for (const auto& [id, watch] : watches_) ids.push_back(id);
    return ids;
  }

 private:
  /// Quality of the sample stream as the detector saw it — which is what
  /// gates the verdict online. The store may hold a cleaner series (late
  /// samples are reconciled by upsert), but a minute that was missing at
  /// scoring time could still have hidden an alarm.
  struct FeedQuality {
    MinuteTime start = 0;  ///< first primed/fed minute
    std::size_t clean = 0;
    std::size_t gap_run = 0;
    std::size_t longest_gap = 0;
    std::size_t flat_run = 0;
    std::size_t longest_flat = 0;
    double prev = 0.0;
    bool have_prev = false;

    void on_sample(double v);
    /// Report over [start, end); minutes in [frontier, end) were never fed
    /// and count as one trailing gap.
    tsdb::QualityReport report(MinuteTime frontier, MinuteTime end) const;
  };

  struct MetricWatch {
    tsdb::MetricId metric;
    /// Exactly one of `scorer` / `gate` is set: with sst_cascade the
    /// CascadeGate owns the IKA scorer and the detector feeds through it
    /// (window-local gates only — a W-sample window carries no season of
    /// WoW history).
    std::unique_ptr<detect::IkaSst> scorer;
    std::unique_ptr<detect::CascadeGate> gate;
    std::unique_ptr<detect::OnlineDetector> detector;
    ItemVerdict verdict;
    FeedQuality quality;
    bool pending_determination = false;  ///< alarm raised, DiD deferred
    /// First minute the detector consumed (priming start).
    MinuteTime fed_start = 0;
    /// Every value the detector consumed, in order (primed history, live
    /// samples and NaN gap fills alike). Recorded only against a persistent
    /// store; replaying it through a fresh detector reproduces the scorer /
    /// gate / quality state bit-for-bit, which is what snapshot_state()
    /// persists instead of the detectors' internal matrices.
    std::vector<double> fed;
  };

  struct ChangeWatch {
    changes::ChangeId change_id = 0;
    ImpactSet set;
    std::map<tsdb::MetricId, MetricWatch> metrics;
    MinuteTime deadline = 0;  ///< change time + horizon
    /// Root span of the watch's trace: opened at watch() on the control
    /// thread, finished at finalize() — on the store's dispatcher thread
    /// when the store is async, which is exactly what DetachedSpan permits.
    /// Priming and every determination span parent under its context.
    obs::DetachedSpan trace;
  };

  /// watch() minus the WAL marker: registers the watch and primes its
  /// detectors from current store history.
  void watch_impl(changes::ChangeId id);
  /// Build an armed MetricWatch (scorer/gate/detector) whose detector clock
  /// starts at `start`. Shared by priming and snapshot restore.
  MetricWatch make_metric_watch(const tsdb::MetricId& metric,
                                MinuteTime start);
  void subscribe_once();
  void handle_sample(const tsdb::MetricId& id, MinuteTime t, double value);
  /// Feed one aligned sample (value, or NaN for a skipped minute) into the
  /// watch's detector, handling alarm rearm/latch bookkeeping.
  void feed_detector(const changes::SoftwareChange& change, MetricWatch& mw,
                     double value);
  void try_determination(ChangeWatch& watch, MetricWatch& mw, MinuteTime now);
  void finalize(changes::ChangeId id, bool timed_out = false);

  /// Stamp the confirming minute on the verdict and record the online
  /// verdict counters + time-to-verdict (the paper's rapidity metric).
  void note_determined(const changes::SoftwareChange& change, MetricWatch& mw,
                       MinuteTime minute);

  FunnelConfig config_;
  const topology::ServiceTopology& topo_;
  const changes::ChangeLog& log_;
  tsdb::MetricStore& store_;
  Funnel batch_;  ///< reuses the Fig. 3 determination logic

  std::map<changes::ChangeId, ChangeWatch> watches_;
  bool record_feed_ = false;  ///< store is persistent: keep MetricWatch::fed
  tsdb::SubscriptionId subscription_ = 0;
  bool subscribed_ = false;
  VerdictCallback verdict_cb_;
  ReportCallback report_cb_;
};

}  // namespace funnel::core
