#include "triage/engine.h"

#include <sstream>

namespace funnel::triage {
namespace {

// File-local JSON helpers (same dialect as funnel/report_json.cpp: default
// ostream double formatting, minimal escaping — triage keys/values are
// machine-generated identifiers, but user-supplied service names pass
// through, so escape anyway).
void escape_to(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':  os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n";  break;
      case '\r': os << "\\r";  break;
      case '\t': os << "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void card_to(std::ostringstream& os, const Scorecard& card) {
  os << "{\"key\":";
  escape_to(os, card.key);
  os << ",\"events\":" << card.events << ",\"detected\":" << card.detected
     << ",\"regressions\":" << card.regressions
     << ",\"inconclusive\":" << card.inconclusive
     << ",\"fallback_control\":" << card.fallback_control
     << ",\"did_runs\":" << card.did_runs
     << ",\"regression_rate\":" << card.regression_rate()
     << ",\"inconclusive_rate\":" << card.inconclusive_rate()
     << ",\"fallback_rate\":" << card.fallback_rate();
  os << ",\"inconclusive_by_reason\":{";
  bool first = true;
  for (const auto& [reason, n] : card.inconclusive_by_reason) {
    if (!first) os << ',';
    first = false;
    escape_to(os, reason);
    os << ':' << n;
  }
  os << "},\"verdicts_timed\":" << card.time_to_verdict.size()
     << ",\"ttv_p50\":" << card.ttv_p50()
     << ",\"ttv_p95\":" << card.ttv_p95() << '}';
}

void blamed_to(std::ostringstream& os, const BlamedChange& ch) {
  os << "{\"change_id\":" << ch.change_id
     << ",\"change_time\":" << ch.change_time << ",\"service\":";
  escape_to(os, ch.service);
  os << ",\"change_type\":";
  escape_to(os, ch.change_type);
  os << ",\"launch_mode\":";
  escape_to(os, ch.launch_mode);
  os << ",\"regressions\":" << ch.regressions
     << ",\"kpis_assessed\":" << ch.kpis_assessed
     << ",\"score\":" << ch.score << ",\"explanation\":";
  escape_to(os, ch.explanation);
  os << '}';
}

void rule_to(std::ostringstream& os, const TriageRule& rule) {
  os << "{\"if\":[";
  for (std::size_t i = 0; i < rule.antecedent.size(); ++i) {
    if (i != 0) os << ',';
    escape_to(os, rule.antecedent[i]);
  }
  os << "],\"regresses\":";
  escape_to(os, rule.kpi);
  os << ",\"support\":" << rule.support << ",\"assessed\":" << rule.assessed
     << ",\"confidence\":" << rule.confidence << '}';
}

void pct_to(std::ostringstream& os, double rate) {
  os << static_cast<int>(rate * 100.0 + 0.5) << '%';
}

}  // namespace

TriageEngine::TriageEngine(TriageOptions options)
    : options_(options) {}

void TriageEngine::observe(const obs::JournalEvent& event) {
  cards_.observe(event);
  events_.push_back(event);
  if (stats_ != nullptr) {
    stats_->add("funnel.triage.events");
    if (event.cause == "software-change") {
      stats_->add("funnel.triage.regressions");
    } else if (event.cause == "inconclusive") {
      stats_->add("funnel.triage.inconclusive");
    }
  }
}

TriageReport TriageEngine::report() const {
  TriageReport out;
  out.events = cards_.events();
  out.totals = cards_.totals();
  out.by_service = cards_.by_service();
  out.by_kpi = cards_.by_kpi();
  out.blame = rank_blame(events_, options_.blame);
  out.rules = mine_rules(events_, options_.rules);
  if (stats_ != nullptr) stats_->add("funnel.triage.reports");
  return out;
}

std::string to_json(const TriageReport& report) {
  std::ostringstream os;
  os << "{\"events\":" << report.events << ",\"totals\":";
  card_to(os, report.totals);
  os << ",\"by_service\":[";
  for (std::size_t i = 0; i < report.by_service.size(); ++i) {
    if (i != 0) os << ',';
    card_to(os, report.by_service[i]);
  }
  os << "],\"by_kpi\":[";
  for (std::size_t i = 0; i < report.by_kpi.size(); ++i) {
    if (i != 0) os << ',';
    card_to(os, report.by_kpi[i]);
  }
  os << "],\"blame\":[";
  for (std::size_t i = 0; i < report.blame.size(); ++i) {
    const BlameCluster& cluster = report.blame[i];
    if (i != 0) os << ',';
    os << "{\"start\":" << cluster.start << ",\"end\":" << cluster.end
       << ",\"changes\":" << cluster.ranking.size() << ",\"ranking\":[";
    for (std::size_t j = 0; j < cluster.ranking.size(); ++j) {
      if (j != 0) os << ',';
      blamed_to(os, cluster.ranking[j]);
    }
    os << "]}";
  }
  os << "],\"rules\":[";
  for (std::size_t i = 0; i < report.rules.size(); ++i) {
    if (i != 0) os << ',';
    rule_to(os, report.rules[i]);
  }
  os << "]}";
  return os.str();
}

std::string to_markdown(const TriageReport& report) {
  std::ostringstream os;
  os << "# Triage report\n\n";
  os << report.events << " determinations; " << report.totals.regressions
     << " regressions, " << report.totals.inconclusive
     << " inconclusive.\n\n";

  os << "## Service scorecards\n\n"
     << "| service | events | regressions | inconclusive | fallback ctrl |"
        " ttv p50/p95 (min) |\n"
     << "|---|---:|---:|---:|---:|---:|\n";
  for (const Scorecard& card : report.by_service) {
    os << "| " << card.key << " | " << card.events << " | "
       << card.regressions << " (";
    pct_to(os, card.regression_rate());
    os << ") | " << card.inconclusive << " (";
    pct_to(os, card.inconclusive_rate());
    os << ") | " << card.fallback_control << " | ";
    if (card.time_to_verdict.empty()) {
      os << "—";
    } else {
      os << card.ttv_p50() << " / " << card.ttv_p95();
    }
    os << " |\n";
  }

  os << "\n## KPI scorecards\n\n"
     << "| kpi | events | regressions | inconclusive |\n"
     << "|---|---:|---:|---:|\n";
  for (const Scorecard& card : report.by_kpi) {
    os << "| " << card.key << " | " << card.events << " | "
       << card.regressions << " | " << card.inconclusive << " |\n";
  }

  if (!report.totals.inconclusive_by_reason.empty()) {
    os << "\n## Inconclusive verdicts by reason\n\n";
    for (const auto& [reason, n] : report.totals.inconclusive_by_reason) {
      os << "- `" << reason << "`: " << n << '\n';
    }
  }

  os << "\n## Blame ranking\n";
  for (const BlameCluster& cluster : report.blame) {
    if (cluster.ranking.size() < 2 &&
        (cluster.ranking.empty() || cluster.ranking[0].regressions == 0)) {
      continue;  // nothing to blame and nobody to disambiguate
    }
    os << "\n### Changes deployed in [" << cluster.start << ", "
       << cluster.end << "]\n\n";
    for (std::size_t i = 0; i < cluster.ranking.size(); ++i) {
      const BlamedChange& ch = cluster.ranking[i];
      os << (i + 1) << ". change " << ch.change_id << " (" << ch.service
         << ", " << ch.change_type << ", " << ch.launch_mode << ") — score "
         << ch.score << "; " << ch.explanation << '\n';
    }
  }

  os << "\n## Mined rules\n\n";
  if (report.rules.empty()) {
    os << "(none above support/confidence thresholds)\n";
  } else {
    for (const TriageRule& rule : report.rules) {
      os << "- IF ";
      for (std::size_t i = 0; i < rule.antecedent.size(); ++i) {
        if (i != 0) os << " AND ";
        os << '`' << rule.antecedent[i] << '`';
      }
      os << " THEN regresses `" << rule.kpi << "` (support " << rule.support
         << '/' << rule.assessed << ", confidence " << rule.confidence
         << ")\n";
    }
  }
  return os.str();
}

std::string change_summary_json(const TriageReport& report,
                                std::uint64_t change_id) {
  for (const BlameCluster& cluster : report.blame) {
    for (std::size_t i = 0; i < cluster.ranking.size(); ++i) {
      const BlamedChange& ch = cluster.ranking[i];
      if (ch.change_id != change_id) continue;
      std::ostringstream os;
      os << "{\"rank\":" << (i + 1)
         << ",\"cluster_changes\":" << cluster.ranking.size()
         << ",\"score\":" << ch.score << ",\"regressions\":"
         << ch.regressions << ",\"explanation\":";
      escape_to(os, ch.explanation);
      os << '}';
      return os.str();
    }
  }
  return "null";
}

}  // namespace funnel::triage
