// Tests for the self-telemetry registry (obs/): counter/gauge/histogram
// correctness, bucket placement on the 1-2-5 ladder, exact totals under a
// multithreaded ThreadPool workload (the per-thread shards must merge
// losslessly), the declare-before-first-event contract, the null-registry
// no-op path, and the two exporters.
//
// Under -DFUNNEL_OBS=OFF the registry compiles to no-ops; the behavioral
// tests skip themselves (obs::kEnabled) and only the no-op contract is
// checked.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/timer.h"

namespace funnel::obs {
namespace {

#define SKIP_IF_OBS_OFF()                                        \
  if (!kEnabled) GTEST_SKIP() << "registry compiled to no-ops "  \
                                 "(FUNNEL_OBS=OFF)"

TEST(ObsRegistry, CountersAccumulate) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.add("a.count");
  reg.add("a.count", 4);
  reg.add("b.count", 10);
  const Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.counters.at("a.count"), 5u);
  EXPECT_EQ(snap.counters.at("b.count"), 10u);
}

TEST(ObsRegistry, GaugeLastWriteWins) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.set("g.value", 1.0);
  reg.set("g.value", 7.5);
  reg.set("g.value", 3.25);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g.value"), 3.25);
}

TEST(ObsRegistry, HistogramStatsAreExact) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  for (const double v : {3.0, 12.0, 150.0, 0.5}) reg.observe("h.us", v);
  const HistogramSnapshot h = reg.snapshot().histograms.at("h.us");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 165.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 150.0);
  EXPECT_DOUBLE_EQ(h.mean(), 165.5 / 4.0);
}

TEST(ObsRegistry, BucketPlacementOnLadder) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  const auto bounds = bucket_bounds();
  ASSERT_GE(bounds.size(), 4u);
  reg.observe("h.us", 0.3);             // below the first bound -> bucket 0
  reg.observe("h.us", bounds[0]);       // exactly on a bound -> that bucket
  reg.observe("h.us", bounds[1] * 1.5); // between bounds[1] and bounds[2]
  reg.observe("h.us", bounds.back() * 2.0);  // beyond the ladder -> overflow
  const HistogramSnapshot h = reg.snapshot().histograms.at("h.us");
  ASSERT_EQ(h.buckets.size(), bounds.size() + 1);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 0u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets.back(), 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, h.count);
}

TEST(ObsRegistry, DeclareCreatesZeroedStats) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.declare_counter("pre.count");
  reg.declare_gauge("pre.gauge");
  reg.declare_histogram("pre.hist");
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("pre.count"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("pre.gauge"), 0.0);
  EXPECT_EQ(snap.histograms.at("pre.hist").count, 0u);
}

// The load-bearing property: every worker thread writes into its own shard
// and the snapshot merge must reproduce the exact totals — no lost updates,
// no double counting.
TEST(ObsRegistry, ThreadPoolMergeIsExact) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 500;
  ThreadPool pool(4);
  pool.parallel_for(0, kTasks, [&](std::size_t i, std::size_t) {
    for (std::uint64_t k = 0; k < kAddsPerTask; ++k) {
      reg.add("mt.count");
      reg.observe("mt.us", static_cast<double>(i % 7));
    }
    reg.set("mt.gauge", static_cast<double>(i));
  });
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("mt.count"), kTasks * kAddsPerTask);
  const HistogramSnapshot h = snap.histograms.at("mt.us");
  EXPECT_EQ(h.count, kTasks * kAddsPerTask);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, h.count);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 6.0);
  // Last write wins: some task's index, whatever the schedule was.
  EXPECT_GE(snap.gauges.at("mt.gauge"), 0.0);
  EXPECT_LT(snap.gauges.at("mt.gauge"), static_cast<double>(kTasks));
}

TEST(ObsRegistry, NullRegistryIsSafeEverywhere) {
  // The disabled path — a null pointer — must be usable from every call
  // site without checks beyond the one the helpers already do.
  const Registry* none = nullptr;
  { const ScopedTimer t(none, "never.recorded"); }
  SUCCEED();
}

TEST(ObsRegistry, ScopedTimerRecordsMicros) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  { const ScopedTimer t(&reg, "span.us"); }
  const HistogramSnapshot h = reg.snapshot().histograms.at("span.us");
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.min, 0.0);
}

TEST(ObsRegistry, JsonExportShape) {
  Registry reg;
  reg.add("c.count", 3);
  reg.set("g.v", 1.5);
  reg.observe("h.us", 42.0);
  const std::string json = snapshot_json(reg.snapshot());
  if (kEnabled) {
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"c.count\":3"), std::string::npos);
    EXPECT_NE(json.find("\"h.us\""), std::string::npos);
    EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);
  }
}

TEST(ObsRegistry, PrometheusExportIsCumulative) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.observe("h.us", 1.0);
  reg.observe("h.us", 3.0);
  const std::string text = prometheus_text(reg.snapshot());
  // Cumulative buckets: le="1" holds 1 observation, le="5" both, +Inf both.
  EXPECT_NE(text.find("h_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("h_us_bucket{le=\"5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("h_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("h_us_count 2"), std::string::npos);
}

TEST(ObsRegistry, PrometheusNamesAreSanitized) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.add("funnel.assess.total", 3);   // dots: the registry's own convention
  reg.add("my-metric", 1);             // dash
  reg.set("metriqu\xc3\xa9", 2.0);     // UTF-8 'é': two non-ASCII bytes
  reg.observe("9lives.us", 7.0);       // leading digit
  const std::string text = prometheus_text(reg.snapshot());

  // Each byte outside [a-zA-Z0-9_:] becomes '_'; a leading digit gets a '_'
  // prefix so the series name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
  EXPECT_NE(text.find("funnel_assess_total 3"), std::string::npos);
  EXPECT_NE(text.find("my_metric 1"), std::string::npos);
  EXPECT_NE(text.find("metriqu__ 2"), std::string::npos);
  EXPECT_NE(text.find("_9lives_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("_9lives_us_bucket{le=\"+Inf\"} 1"), std::string::npos);

  // No raw illegal bytes survive anywhere in the exposition: every line
  // must start with '#' or a legal series-name first character, and names
  // run clean up to the first space or '{'.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    for (std::size_t i = 0; i < name_end; ++i) {
      const char c = line[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "illegal byte in series name: " << line;
    }
    EXPECT_FALSE(line[0] >= '0' && line[0] <= '9')
        << "series name starts with a digit: " << line;
  }
}

TEST(ObsRegistry, RegistriesAreIndependent) {
  SKIP_IF_OBS_OFF();
  Registry a;
  Registry b;
  a.add("same.name", 1);
  b.add("same.name", 100);
  EXPECT_EQ(a.snapshot().counters.at("same.name"), 1u);
  EXPECT_EQ(b.snapshot().counters.at("same.name"), 100u);
}

}  // namespace
}  // namespace funnel::obs
