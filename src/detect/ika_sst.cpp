#include "detect/ika_sst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "linalg/hankel.h"
#include "linalg/lanczos.h"
#include "linalg/sym_eigen.h"
#include "linalg/tridiag.h"

namespace funnel::detect {
namespace {

// Orthonormalize the columns of b in place (modified Gram-Schmidt); columns
// that collapse to zero are replaced with canonical basis vectors so the
// block keeps full rank.
void orthonormalize(linalg::Matrix& b) {
  const std::size_t n = b.rows();
  for (std::size_t j = 0; j < b.cols(); ++j) {
    linalg::Vector col = b.col(j);
    for (std::size_t k = 0; k < j; ++k) {
      const linalg::Vector prev = b.col(k);
      const double proj = linalg::dot(col, prev);
      for (std::size_t i = 0; i < n; ++i) col[i] -= proj * prev[i];
    }
    if (linalg::normalize(col) <= 1e-12) {
      std::fill(col.begin(), col.end(), 0.0);
      col[j % n] = 1.0;
      for (std::size_t k = 0; k < j; ++k) {
        const linalg::Vector prev = b.col(k);
        const double proj = linalg::dot(col, prev);
        for (std::size_t i = 0; i < n; ++i) col[i] -= proj * prev[i];
      }
      linalg::normalize(col);
    }
    b.set_col(j, col);
  }
}

}  // namespace

IkaSst::IkaSst(SstGeometry geometry, IkaParams params)
    : geo_(geometry), params_(params) {
  FUNNEL_REQUIRE(geo_.omega >= 2, "SST needs omega >= 2");
  FUNNEL_REQUIRE(geo_.eta >= 1 && geo_.eta < geo_.omega,
                 "SST needs 1 <= eta < omega");
  FUNNEL_REQUIRE(geo_.krylov_k() <= geo_.omega,
                 "Krylov dimension k must not exceed omega");
  FUNNEL_REQUIRE(params_.cold_iterations >= 1 && params_.warm_iterations >= 1,
                 "iteration counts must be positive");
}

double IkaSst::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == geo_.window(),
                 "IkaSst window size mismatch");
  const std::vector<double> z = standardize_window(window, geo_.half());
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();

  const std::size_t omega = geo_.omega;
  const std::size_t eta = geo_.eta;
  const std::size_t k = geo_.krylov_k();
  const std::span<const double> past(z.data(), geo_.half());
  const std::span<const double> future(z.data() + geo_.half(), geo_.half());

  // --- Future: eta leading eigenpairs of A·Aᵀ by warm-started block power
  // iteration with Rayleigh-Ritz extraction. ---
  const linalg::HankelGramOperator future_op(future, omega, omega);
  if (!warm_) {
    // Seed with lagged windows spread across the future half, plus ones.
    future_basis_ = linalg::Matrix(omega, eta);
    for (std::size_t j = 0; j < eta; ++j) {
      const std::size_t offset =
          eta > 1 ? j * (future.size() - omega) / (eta - 1) : 0;
      for (std::size_t i = 0; i < omega; ++i) {
        future_basis_(i, j) = future[offset + i] + (j == 0 ? 1e-3 : 0.0);
      }
    }
    orthonormalize(future_basis_);
  }

  const int iterations = warm_ ? params_.warm_iterations
                               : params_.cold_iterations;
  linalg::Vector lambdas(eta, 0.0);
  linalg::Vector tmp(omega);
  for (int it = 0; it < iterations; ++it) {
    // Y = C * B, column by column through the implicit operator.
    linalg::Matrix y(omega, eta);
    for (std::size_t j = 0; j < eta; ++j) {
      const linalg::Vector col = future_basis_.col(j);
      future_op.apply(col, tmp);
      y.set_col(j, tmp);
    }
    // Rayleigh-Ritz on the block: T = Bᵀ C B (eta x eta), rotate B by T's
    // eigenvectors so the columns track individual eigen-directions.
    linalg::Matrix t(eta, eta);
    for (std::size_t a = 0; a < eta; ++a) {
      const linalg::Vector ba = future_basis_.col(a);
      for (std::size_t b = a; b < eta; ++b) {
        const double v = linalg::dot(ba, y.col(b));
        t(a, b) = v;
        t(b, a) = v;
      }
    }
    const linalg::SymEigen te = linalg::sym_eigen(t);
    lambdas = te.values;
    // B <- Y * Q (power step combined with the Ritz rotation), then
    // re-orthonormalize.
    linalg::Matrix next(omega, eta);
    for (std::size_t j = 0; j < eta; ++j) {
      linalg::Vector col(omega, 0.0);
      for (std::size_t a = 0; a < eta; ++a) {
        const double q = te.vectors(a, j);
        for (std::size_t i = 0; i < omega; ++i) col[i] += y(i, a) * q;
      }
      next.set_col(j, col);
    }
    orthonormalize(next);
    future_basis_ = std::move(next);
  }
  warm_ = true;

  // --- Past: phi_i via Lanczos + QL on the implicit past operator. ---
  const linalg::HankelGramOperator past_op(past, omega, omega);

  double weighted = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < eta; ++i) {
    const double lambda = std::max(lambdas[i], 0.0);
    if (lambda <= 0.0) break;
    const linalg::Vector beta = future_basis_.col(i);

    const linalg::LanczosResult plr = linalg::lanczos(past_op, beta, k);
    const linalg::SymEigen pe = linalg::tridiag_eigen(plr.t);
    double proj2 = 0.0;
    const std::size_t n_past = std::min<std::size_t>(eta, pe.values.size());
    for (std::size_t j = 0; j < n_past; ++j) {
      if (pe.values[j] <= 0.0) break;
      const double x0 = pe.vectors(0, j);  // Eq. 13: first components
      proj2 += x0 * x0;
    }
    const double phi = std::clamp(1.0 - proj2, 0.0, 1.0);
    weighted += lambda * phi;  // Eq. 9
    total_weight += lambda;
  }
  if (total_weight <= 0.0) return 0.0;
  const double xhat =
      std::max(weighted / total_weight, geo_.novelty_floor);

  return xhat * robust_score_factor(past, future);  // Eq. 11
}

}  // namespace funnel::detect
