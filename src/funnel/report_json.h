// JSON export of assessment reports — the integration surface for paging
// and ticketing systems (the "deliver to OP" arrow of Fig. 3 step 12).
#pragma once

#include <string>

#include "funnel/report.h"

namespace funnel::core {

/// Render one verdict as a JSON object.
std::string to_json(const ItemVerdict& verdict);

/// Render the full report as a JSON object (stable key order, no external
/// dependency).
std::string to_json(const AssessmentReport& report);

}  // namespace funnel::core
