// Tests for software-change records and the deployment change log.
#include "changes/change_log.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace funnel::changes {
namespace {

topology::ServiceTopology make_topo() {
  topology::ServiceTopology t;
  for (const char* srv : {"h1", "h2", "h3"}) t.add_server("svc", srv);
  t.add_server("other", "o1");
  t.add_server("other", "o2");
  return t;
}

SoftwareChange dark_change(MinuteTime time = 100) {
  SoftwareChange c;
  c.service = "svc";
  c.servers = {"h1"};
  c.time = time;
  c.mode = LaunchMode::kDark;
  return c;
}

TEST(ChangeLog, RecordAssignsSequentialIds) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  EXPECT_EQ(log.record(dark_change(10), topo), 0u);
  EXPECT_EQ(log.record(dark_change(20), topo), 1u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.get(0).time, 10);
  EXPECT_EQ(log.get(1).time, 20);
  EXPECT_THROW((void)log.get(2), InvalidArgument);
}

TEST(ChangeLog, ValidatesServiceAndServers) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  SoftwareChange c = dark_change();
  c.service = "unknown";
  EXPECT_THROW((void)log.record(c, topo), InvalidArgument);
  c = dark_change();
  c.servers = {"o1"};  // belongs to "other"
  EXPECT_THROW((void)log.record(c, topo), InvalidArgument);
  c = dark_change();
  c.servers.clear();
  EXPECT_THROW((void)log.record(c, topo), InvalidArgument);
}

TEST(ChangeLog, FullLaunchMustCoverEveryServer) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  SoftwareChange c = dark_change();
  c.mode = LaunchMode::kFull;
  c.servers = {"h1", "h2"};
  EXPECT_THROW((void)log.record(c, topo), InvalidArgument);
  c.servers = {"h1", "h2", "h3"};
  EXPECT_EQ(log.record(c, topo), 0u);
  EXPECT_FALSE(log.get(0).dark_launched());
}

TEST(ChangeLog, DarkLaunchMustLeaveControlServers) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  SoftwareChange c = dark_change();
  c.servers = {"h1", "h2", "h3"};  // covers everything but claims dark
  EXPECT_THROW((void)log.record(c, topo), InvalidArgument);
}

TEST(ChangeLog, ForServiceIsTimeOrdered) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  (void)log.record(dark_change(30), topo);
  SoftwareChange other;
  other.service = "other";
  other.servers = {"o1"};
  other.time = 5;
  other.mode = LaunchMode::kDark;
  (void)log.record(other, topo);
  (void)log.record(dark_change(10), topo);
  EXPECT_EQ(log.for_service("svc"), (std::vector<ChangeId>{2, 0}));
  EXPECT_EQ(log.for_service("other"), (std::vector<ChangeId>{1}));
  EXPECT_TRUE(log.for_service("none").empty());
}

TEST(ChangeLog, InWindowHalfOpen) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  (void)log.record(dark_change(10), topo);
  (void)log.record(dark_change(20), topo);
  (void)log.record(dark_change(30), topo);
  EXPECT_EQ(log.in_window(10, 30), (std::vector<ChangeId>{0, 1}));
  EXPECT_EQ(log.in_window(11, 20), (std::vector<ChangeId>{}));
  EXPECT_EQ(log.in_window(0, 100), (std::vector<ChangeId>{0, 1, 2}));
}

TEST(ChangeLog, LastBeforeStrict) {
  const topology::ServiceTopology topo = make_topo();
  ChangeLog log;
  (void)log.record(dark_change(10), topo);
  (void)log.record(dark_change(20), topo);
  EXPECT_EQ(log.last_before("svc", 15), std::optional<ChangeId>{0});
  EXPECT_EQ(log.last_before("svc", 21), std::optional<ChangeId>{1});
  EXPECT_EQ(log.last_before("svc", 20), std::optional<ChangeId>{0});
  EXPECT_EQ(log.last_before("svc", 10), std::nullopt);
  EXPECT_EQ(log.last_before("other", 100), std::nullopt);
}

TEST(Change, EnumNames) {
  EXPECT_STREQ(to_string(ChangeType::kSoftwareUpgrade), "software-upgrade");
  EXPECT_STREQ(to_string(ChangeType::kConfigChange), "config-change");
  EXPECT_STREQ(to_string(LaunchMode::kDark), "dark-launching");
  EXPECT_STREQ(to_string(LaunchMode::kFull), "full-launching");
}

}  // namespace
}  // namespace funnel::changes
