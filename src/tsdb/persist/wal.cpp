#include "tsdb/persist/wal.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#ifdef __unix__
#include <unistd.h>
#endif

namespace funnel::tsdb::persist {

namespace {

// Frame header: u32 payload length + u32 payload CRC32C.
constexpr std::size_t kFrameHeader = 8;
// A record payload is a handful of fixed fields plus two short strings;
// anything bigger than this is torn-tail garbage, not a record.
constexpr std::uint32_t kMaxPayload = 1 << 20;

std::string encode_payload(const WalRecord& r) {
  std::string p;
  p.reserve(64);
  put_u8(p, kWalVersion);
  put_u8(p, static_cast<std::uint8_t>(r.type));
  put_u64(p, r.seq);
  switch (r.type) {
    case WalRecordType::kSample:
      put_u8(p, static_cast<std::uint8_t>(r.metric.kind));
      put_str(p, r.metric.entity);
      put_str(p, r.metric.kpi);
      put_i64(p, r.minute);
      put_f64(p, r.value);
      break;
    case WalRecordType::kWatch:
      put_u64(p, r.change_id);
      break;
  }
  return p;
}

bool decode_payload(std::string_view payload, WalRecord& out) {
  ByteReader r(payload);
  if (r.get_u8() != kWalVersion) return false;
  const std::uint8_t type = r.get_u8();
  WalRecord rec;
  rec.seq = r.get_u64();
  switch (type) {
    case static_cast<std::uint8_t>(WalRecordType::kSample): {
      rec.type = WalRecordType::kSample;
      const std::uint8_t kind = r.get_u8();
      if (kind > static_cast<std::uint8_t>(EntityKind::kService)) return false;
      rec.metric.kind = static_cast<EntityKind>(kind);
      rec.metric.entity = r.get_str();
      rec.metric.kpi = r.get_str();
      rec.minute = r.get_i64();
      rec.value = r.get_f64();
      break;
    }
    case static_cast<std::uint8_t>(WalRecordType::kWatch):
      rec.type = WalRecordType::kWatch;
      rec.change_id = r.get_u64();
      break;
    default:
      return false;
  }
  if (!r.ok() || r.remaining() != 0) return false;
  out = std::move(rec);
  return true;
}

}  // namespace

std::string encode_wal_record(const WalRecord& record) {
  const std::string payload = encode_payload(record);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32c(payload));
  frame += payload;
  return frame;
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return result;
  result.ok = true;

  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::size_t off = 0;
  while (off + kFrameHeader <= bytes.size()) {
    ByteReader hdr(bytes.data() + off, kFrameHeader);
    const std::uint32_t len = hdr.get_u32();
    const std::uint32_t crc = hdr.get_u32();
    if (len > kMaxPayload || off + kFrameHeader + len > bytes.size()) break;
    const std::string_view payload(bytes.data() + off + kFrameHeader, len);
    if (crc32c(payload) != crc) break;
    WalRecord rec;
    if (!decode_payload(payload, rec)) break;
    result.records.push_back(std::move(rec));
    off += kFrameHeader + len;
  }
  result.valid_bytes = off;
  result.skipped_bytes = bytes.size() - off;
  return result;
}

// ---------------------------------------------------------------------------
// Writer. Same skeleton as obs::Journal's Impl: one mutex, three condition
// variables, monotonic submitted/settled counters so flush() waits for
// exactly "everything logged before me".

struct WalWriter::Impl {
  Impl(std::size_t capacity, WalDurability durability, std::uint64_t next_seq)
      : capacity(capacity == 0 ? 1 : capacity),
        durability(durability),
        next_seq(next_seq) {}

  const std::size_t capacity;
  const WalDurability durability;

  std::FILE* file = nullptr;

  mutable std::mutex mutex;
  std::condition_variable space_cv;    ///< producers waiting for room
  std::condition_variable arrival_cv;  ///< writer waiting for work
  std::condition_variable settled_cv;  ///< flush waiters
  std::deque<WalRecord> queue;
  std::uint64_t next_seq;       ///< seq the next log() assigns
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t settled = 0;    ///< written to the file
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t batch_count = 0;
  bool stop = false;
  bool crashed = false;

  std::atomic<const obs::Registry*> stats{nullptr};

  std::thread thread;  ///< last started, first joined

  void run() {
    std::string buf;
    std::vector<WalRecord> batch;
    for (;;) {
      batch.clear();
      std::FILE* out;
      {
        std::unique_lock lock(mutex);
        arrival_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (crashed) return;  // abandon the queue: simulated kill
        if (queue.empty()) return;
        // Group commit: drain everything queued into one fwrite + fflush.
        while (!queue.empty()) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        out = file;
        space_cv.notify_all();
      }

      buf.clear();
      for (const WalRecord& rec : batch) buf += encode_wal_record(rec);
      const auto commit_start = std::chrono::steady_clock::now();
      std::fwrite(buf.data(), 1, buf.size(), out);
      std::fflush(out);
#ifdef __unix__
      if (durability == WalDurability::kFsync) ::fsync(::fileno(out));
#endif

      if (const obs::Registry* reg = stats.load(std::memory_order_relaxed)) {
        reg->add("funnel.wal.records", batch.size());
        reg->add("funnel.wal.bytes", buf.size());
        reg->add("funnel.wal.batches");
        // One observation per group commit (fwrite + fflush [+ fsync]) —
        // the "WAL fsync latency" KPI the selfmon loop watches for a
        // degrading disk.
        reg->observe("funnel.wal.commit_us",
                     std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - commit_start)
                         .count());
      }

      {
        std::lock_guard lock(mutex);
        if (crashed) return;
        settled += batch.size();
        records += batch.size();
        bytes += buf.size();
        ++batch_count;
        if (const obs::Registry* reg = stats.load(std::memory_order_relaxed)) {
          reg->set("funnel.wal.queue_depth",
                   static_cast<double>(queue.size()));
        }
        settled_cv.notify_all();
      }
    }
  }
};

WalWriter::WalWriter(std::string path, std::uint64_t next_seq,
                     WalWriterOptions options)
    : path_(std::move(path)),
      impl_(std::make_unique<Impl>(options.queue_capacity, options.durability,
                                   next_seq)) {
  // "ab": recovery has already truncated the torn tail, so appending after
  // the valid prefix continues the record stream seamlessly.
  impl_->file = std::fopen(path_.c_str(), "ab");
  ok_ = (impl_->file != nullptr);
  if (!ok_) return;
  impl_->thread = std::thread([impl = impl_.get()] { impl->run(); });
}

WalWriter::~WalWriter() {
  if (!ok_) return;
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stop = true;
    impl_->arrival_cv.notify_all();
  }
  // Already joined if crash_for_testing() ran.
  if (impl_->thread.joinable()) impl_->thread.join();
  if (impl_->file != nullptr) std::fclose(impl_->file);
}

std::uint64_t WalWriter::log(WalRecord record) {
  Impl& im = *impl_;
  std::unique_lock lock(im.mutex);
  if (!ok_ || im.crashed) return im.next_seq;
  if (im.queue.size() >= im.capacity) {
    im.space_cv.wait(lock,
                     [&] { return im.crashed || im.queue.size() < im.capacity; });
    if (im.crashed) return im.next_seq;
  }
  record.seq = im.next_seq++;
  // Writer only waits on an empty queue: empty -> non-empty is the only
  // transition that needs a wakeup (same optimization as obs::Journal).
  const bool was_empty = im.queue.empty();
  const std::uint64_t seq = record.seq;
  im.queue.push_back(std::move(record));
  ++im.submitted;
  if (was_empty) im.arrival_cv.notify_one();
  return seq;
}

void WalWriter::flush() {
  if (!ok_) return;
  Impl& im = *impl_;
  std::unique_lock lock(im.mutex);
  if (im.crashed) return;
  const std::uint64_t target = im.submitted;
  im.settled_cv.wait(lock, [&] { return im.crashed || im.settled >= target; });
}

std::uint64_t WalWriter::next_seq() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->next_seq;
}

std::uint64_t WalWriter::records_written() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->records;
}

std::uint64_t WalWriter::bytes_written() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->bytes;
}

std::uint64_t WalWriter::batches() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->batch_count;
}

void WalWriter::rotate(std::string path) {
  if (!ok_) return;
  flush();
  Impl& im = *impl_;
  std::lock_guard lock(im.mutex);
  if (im.crashed) return;
  // The queue is empty (flush() above, producers quiesced by the caller),
  // so the writer thread holds no stale FILE*: it re-reads `file` under the
  // mutex at the top of every batch.
  std::fflush(im.file);
  std::fclose(im.file);
  im.file = std::fopen(path.c_str(), "wb");
  ok_ = (im.file != nullptr);
  path_ = std::move(path);
}

void WalWriter::crash_for_testing() {
  if (!ok_) return;
  Impl& im = *impl_;
  {
    std::lock_guard lock(im.mutex);
    im.crashed = true;
    im.stop = true;
    im.arrival_cv.notify_all();
    im.space_cv.notify_all();
    im.settled_cv.notify_all();
  }
  im.thread.join();
  std::lock_guard lock(im.mutex);
  if (im.file != nullptr) {
    // Records still queued are abandoned — the loss a real kill inflicts.
    // (Every completed batch already hit fflush, so closing loses nothing
    // more; the replay test additionally truncates the file at a random
    // byte to simulate a tear inside the final flushed batch.)
    std::fclose(im.file);
    im.file = nullptr;
  }
}

void WalWriter::set_stats(const obs::Registry* stats) {
  if (!ok_) return;
  impl_->stats.store(stats, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->set("funnel.wal.queue_capacity",
               static_cast<double>(impl_->capacity));
    stats->declare_gauge("funnel.wal.queue_depth");
    stats->declare_counter("funnel.wal.records");
    stats->declare_counter("funnel.wal.bytes");
    stats->declare_counter("funnel.wal.batches");
    stats->declare_histogram("funnel.wal.commit_us");
  }
}

}  // namespace funnel::tsdb::persist
