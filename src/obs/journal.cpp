#include "obs/journal.h"

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

namespace funnel::obs {

namespace {

// ---------------------------------------------------------------------------
// Serialization. Fixed key order, omitted absent optionals, %.17g doubles:
// the same event always renders to the same bytes, which is what lets the
// determinism test compare canonically sorted journals byte-for-byte.

void escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void key_to(std::string& out, std::string_view key) {
  if (out.back() != '{') out += ',';
  out += '"';
  out += key;  // keys are fixed identifiers, never need escaping
  out += "\":";
}

void str_field(std::string& out, std::string_view key, std::string_view value) {
  key_to(out, key);
  out += '"';
  escape_to(out, value);
  out += '"';
}

// Numeric fields go through std::to_chars — specified to render exactly the
// bytes printf's "C"-locale %d / %.17g would, but several times faster, which
// matters because serialization runs on the writer thread that shares cores
// with the hot path.

void int_field(std::string& out, std::string_view key, std::int64_t value) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value);
  key_to(out, key);
  out.append(buf, r.ptr);
}

void uint_field(std::string& out, std::string_view key, std::uint64_t value) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value);
  key_to(out, key);
  out.append(buf, r.ptr);
}

void double_field(std::string& out, std::string_view key, double value) {
  char buf[40];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value,
                               std::chars_format::general, 17);
  key_to(out, key);
  out.append(buf, r.ptr);
}

void bool_field(std::string& out, std::string_view key, bool value) {
  key_to(out, key);
  out += value ? "true" : "false";
}

template <typename T, typename Fn>
void opt_field(std::string& out, std::string_view key,
               const std::optional<T>& value, Fn&& emit) {
  if (value.has_value()) emit(out, key, *value);
}

// ---------------------------------------------------------------------------
// Parsing. The journal grammar is a strict subset of JSON — one flat object
// per line, string / number / bool values only — so a small hand parser
// keeps obs dependency-free. Unknown keys are skipped (forward compat);
// structural damage (the crash-truncation signature) fails the line.

struct Cursor {
  const char* p;
  const char* end;

  bool eof() const { return p == end; }
  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (!c.eof()) {
    char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.eof()) return false;
      char esc = *c.p++;
      switch (esc) {
        case '"':  out += '"';  break;
        case '\\': out += '\\'; break;
        case '/':  out += '/';  break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          if (c.end - c.p < 4) return false;
          char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], '\0'};
          char* hend = nullptr;
          unsigned long cp = std::strtoul(hex, &hend, 16);
          if (hend != hex + 4) return false;
          c.p += 4;
          // Journal writers only emit \u00XX control escapes; anything in
          // the BMP decodes to UTF-8 here for robustness.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    } else {
      out += ch;
    }
  }
  return false;  // ran off the end inside a string: truncated line
}

// Raw token for a number / true / false value.
bool parse_scalar(Cursor& c, std::string& out) {
  c.skip_ws();
  out.clear();
  while (!c.eof() && *c.p != ',' && *c.p != '}' && *c.p != ' ' &&
         *c.p != '\t') {
    out += *c.p++;
  }
  return !out.empty();
}

bool to_int(const std::string& tok, std::int64_t& out) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = v;
  return true;
}

bool to_uint(const std::string& tok, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || tok.empty() ||
      tok[0] == '-') {
    return false;
  }
  out = v;
  return true;
}

bool to_double(const std::string& tok, double& out) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = v;
  return true;
}

}  // namespace

std::string to_jsonl(const JournalEvent& e) {
  std::string out;
  out.reserve(512);
  out += '{';
  int_field(out, "v", e.v);
  str_field(out, "source", e.source);
  uint_field(out, "change_id", e.change_id);
  int_field(out, "change_time", e.change_time);
  str_field(out, "service", e.service);
  str_field(out, "change_type", e.change_type);
  str_field(out, "launch_mode", e.launch_mode);
  str_field(out, "metric", e.metric);
  str_field(out, "entity_kind", e.entity_kind);
  str_field(out, "kpi", e.kpi);
  str_field(out, "cause", e.cause);
  if (!e.inconclusive_reason.empty()) {
    str_field(out, "inconclusive_reason", e.inconclusive_reason);
  }
  bool_field(out, "detected", e.detected);
  opt_field(out, "alarm_minute", e.alarm_minute,
            [](std::string& o, std::string_view k, MinuteTime v) {
              int_field(o, k, v);
            });
  opt_field(out, "sst_peak", e.sst_peak,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "sst_damp_factor", e.sst_damp_factor,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "did_alpha", e.did_alpha,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "did_alpha_scaled", e.did_alpha_scaled,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "did_t_stat", e.did_t_stat,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "did_n_treated", e.did_n_treated,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  opt_field(out, "did_n_control", e.did_n_control,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  if (!e.control_kind.empty()) str_field(out, "control_kind", e.control_kind);
  bool_field(out, "fallback_control", e.fallback_control);
  opt_field(out, "coverage", e.coverage,
            [](std::string& o, std::string_view k, double v) {
              double_field(o, k, v);
            });
  opt_field(out, "window_minutes", e.window_minutes,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  opt_field(out, "clean_samples", e.clean_samples,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  opt_field(out, "longest_gap_run", e.longest_gap_run,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  opt_field(out, "longest_flat_run", e.longest_flat_run,
            [](std::string& o, std::string_view k, std::int64_t v) {
              int_field(o, k, v);
            });
  if (!e.gate_decision.empty()) str_field(out, "gate_decision", e.gate_decision);
  opt_field(out, "determined_at", e.determined_at,
            [](std::string& o, std::string_view k, MinuteTime v) {
              int_field(o, k, v);
            });
  opt_field(out, "time_to_verdict", e.time_to_verdict,
            [](std::string& o, std::string_view k, MinuteTime v) {
              int_field(o, k, v);
            });
  out += '}';
  return out;
}

bool parse_jsonl(std::string_view line, JournalEvent& event) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;

  JournalEvent e;
  bool saw_version = false;
  bool first = true;
  for (;;) {
    c.skip_ws();
    if (c.eat('}')) break;
    if (!first && !c.eat(',')) return false;
    first = false;

    std::string key;
    if (!parse_string(c, key)) return false;
    if (!c.eat(':')) return false;

    c.skip_ws();
    std::string sval, tok;
    bool is_string = !c.eof() && *c.p == '"';
    if (is_string) {
      if (!parse_string(c, sval)) return false;
    } else {
      if (!parse_scalar(c, tok)) return false;
    }

    auto want_int = [&](std::optional<std::int64_t>& slot) {
      std::int64_t v;
      if (!is_string && to_int(tok, v)) slot = v;
    };
    auto want_double = [&](std::optional<double>& slot) {
      double v;
      if (!is_string && to_double(tok, v)) slot = v;
    };

    if (key == "v") {
      std::int64_t v;
      if (is_string || !to_int(tok, v)) return false;
      e.v = static_cast<int>(v);
      saw_version = true;
    } else if (key == "source") {
      e.source = sval;
    } else if (key == "change_id") {
      std::uint64_t v;
      if (!is_string && to_uint(tok, v)) e.change_id = v;
    } else if (key == "change_time") {
      std::int64_t v;
      if (!is_string && to_int(tok, v)) e.change_time = v;
    } else if (key == "service") {
      e.service = sval;
    } else if (key == "change_type") {
      e.change_type = sval;
    } else if (key == "launch_mode") {
      e.launch_mode = sval;
    } else if (key == "metric") {
      e.metric = sval;
    } else if (key == "entity_kind") {
      e.entity_kind = sval;
    } else if (key == "kpi") {
      e.kpi = sval;
    } else if (key == "cause") {
      e.cause = sval;
    } else if (key == "inconclusive_reason") {
      e.inconclusive_reason = sval;
    } else if (key == "detected") {
      e.detected = (tok == "true");
    } else if (key == "alarm_minute") {
      want_int(e.alarm_minute);
    } else if (key == "sst_peak") {
      want_double(e.sst_peak);
    } else if (key == "sst_damp_factor") {
      want_double(e.sst_damp_factor);
    } else if (key == "did_alpha") {
      want_double(e.did_alpha);
    } else if (key == "did_alpha_scaled") {
      want_double(e.did_alpha_scaled);
    } else if (key == "did_t_stat") {
      want_double(e.did_t_stat);
    } else if (key == "did_n_treated") {
      want_int(e.did_n_treated);
    } else if (key == "did_n_control") {
      want_int(e.did_n_control);
    } else if (key == "control_kind") {
      e.control_kind = sval;
    } else if (key == "fallback_control") {
      e.fallback_control = (tok == "true");
    } else if (key == "coverage") {
      want_double(e.coverage);
    } else if (key == "window_minutes") {
      want_int(e.window_minutes);
    } else if (key == "clean_samples") {
      want_int(e.clean_samples);
    } else if (key == "longest_gap_run") {
      want_int(e.longest_gap_run);
    } else if (key == "longest_flat_run") {
      want_int(e.longest_flat_run);
    } else if (key == "gate_decision") {
      e.gate_decision = sval;
    } else if (key == "determined_at") {
      want_int(e.determined_at);
    } else if (key == "time_to_verdict") {
      want_int(e.time_to_verdict);
    }
    // Unknown key: value already consumed, skip it.
  }
  c.skip_ws();
  if (!c.eof()) return false;
  if (!saw_version || e.v != kJournalSchemaVersion) return false;

  event = std::move(e);
  return true;
}

std::vector<JournalEvent> read_journal(const std::string& path,
                                       std::size_t* bad_lines, bool* ok) {
  if (bad_lines != nullptr) *bad_lines = 0;
  std::vector<JournalEvent> events;
  std::ifstream in(path);
  if (ok != nullptr) *ok = in.good();
  if (!in.good()) return events;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalEvent e;
    if (parse_jsonl(line, e)) {
      events.push_back(std::move(e));
    } else if (bad_lines != nullptr) {
      ++*bad_lines;
    }
  }
  return events;
}

std::uint64_t repair_journal(const std::string& path,
                             std::uint64_t keep_events) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;

  std::uint64_t off = 0;       // bytes consumed so far
  std::uint64_t keep_off = 0;  // end of the last event we keep
  std::uint64_t kept = 0;
  std::string line;
  while (kept < keep_events && std::getline(in, line)) {
    off += line.size() + (in.eof() ? 0 : 1);  // '\n' unless torn final line
    if (line.empty()) continue;
    JournalEvent e;
    if (!parse_jsonl(line, e)) continue;  // torn/corrupt line: drop it
    ++kept;
    keep_off = off;
  }
  in.close();

  std::error_code ec;
  std::filesystem::resize_file(path, keep_off, ec);
  return ec ? 0 : kept;
}

#ifdef FUNNEL_OBS_OFF

Journal::Journal(std::string path, JournalOptions options)
    : path_(std::move(path)) {
  // Create (or truncate) the file so --journal keeps its open-check and
  // empty-journal semantics; nothing will ever be written to it.
  std::FILE* f = std::fopen(path_.c_str(), options.truncate ? "wb" : "ab");
  ok_ = (f != nullptr);
  if (f != nullptr) std::fclose(f);
}

#else  // FUNNEL_OBS_OFF

// Writer-side state. Mirrors tsdb::IngestDispatcher: one mutex, three
// condition variables, a deque, monotonic submitted/settled counters so
// flush() can wait for "everything appended before me" exactly.
struct Journal::Impl {
  explicit Impl(std::size_t capacity, JournalBackpressure policy)
      : capacity(capacity == 0 ? 1 : capacity), policy(policy) {}

  const std::size_t capacity;
  const JournalBackpressure policy;

  std::FILE* file = nullptr;

  mutable std::mutex mutex;
  std::condition_variable space_cv;    ///< producers waiting for room
  std::condition_variable arrival_cv;  ///< writer waiting for work
  std::condition_variable settled_cv;  ///< flush waiters
  std::deque<JournalEvent> queue;
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t settled = 0;    ///< written + dropped
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes = 0;
  bool stop = false;

  std::function<void(const JournalEvent&)> observer;
  std::atomic<const Registry*> stats{nullptr};

  std::thread thread;  ///< last started, first joined

  void run() {
    std::string buf;
    std::vector<JournalEvent> batch;
    for (;;) {
      batch.clear();
      {
        std::unique_lock lock(mutex);
        arrival_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (queue.empty()) return;  // stop && drained
        // Group commit: take everything queued in one go. Under steady
        // load the writer outruns the producers and a batch is one event
        // (a crash loses at most the line in flight); under bursts the
        // batch amortizes the fwrite + fflush so the queue never backs up.
        while (!queue.empty()) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        space_cv.notify_all();
      }

      buf.clear();
      for (const JournalEvent& event : batch) {
        buf += to_jsonl(event);
        buf += '\n';
      }
      std::fwrite(buf.data(), 1, buf.size(), file);
      // One fflush per batch: the crash-tolerance story is "lose at most
      // the batch being written", not "lose a stdio buffer full".
      std::fflush(file);

      if (observer) {
        for (const JournalEvent& event : batch) observer(event);
      }

      if (const Registry* reg = stats.load(std::memory_order_relaxed)) {
        reg->add("funnel.journal.events", batch.size());
        reg->add("funnel.journal.bytes", buf.size());
      }

      {
        std::lock_guard lock(mutex);
        settled += batch.size();
        written += batch.size();
        bytes += buf.size();
        if (const Registry* reg = stats.load(std::memory_order_relaxed)) {
          reg->set("funnel.journal.queue_depth",
                   static_cast<double>(queue.size()));
        }
        settled_cv.notify_all();
      }
    }
  }
};

Journal::Journal(std::string path, JournalOptions options)
    : path_(std::move(path)),
      impl_(std::make_unique<Impl>(options.queue_capacity, options.policy)) {
  impl_->file = std::fopen(path_.c_str(), options.truncate ? "wb" : "ab");
  ok_ = (impl_->file != nullptr);
  if (!ok_) return;
  impl_->thread = std::thread([impl = impl_.get()] { impl->run(); });
}

Journal::~Journal() {
  if (!ok_) return;
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stop = true;
    impl_->arrival_cv.notify_all();
  }
  impl_->thread.join();
  std::fclose(impl_->file);
}

void Journal::append(JournalEvent event) const {
  if (!ok_) return;
  Impl& im = *impl_;
  std::unique_lock lock(im.mutex);
  if (im.queue.size() >= im.capacity) {
    if (im.policy == JournalBackpressure::kBlock) {
      im.space_cv.wait(lock, [&] { return im.queue.size() < im.capacity; });
    } else {
      im.queue.pop_front();
      ++im.settled;
      ++im.dropped;
      if (const Registry* reg = im.stats.load(std::memory_order_relaxed)) {
        reg->add("funnel.journal.dropped");
      }
      im.settled_cv.notify_all();
    }
  }
  // The writer only ever waits on an empty queue, so only the
  // empty -> non-empty transition needs a wakeup; skipping the futex
  // syscall on every other append keeps the hot path's cost at one
  // lock + push.
  const bool was_empty = im.queue.empty();
  im.queue.push_back(std::move(event));
  ++im.submitted;
  if (was_empty) im.arrival_cv.notify_one();
}

void Journal::flush() const {
  if (!ok_) return;
  Impl& im = *impl_;
  std::unique_lock lock(im.mutex);
  const std::uint64_t target = im.submitted;
  im.settled_cv.wait(lock, [&] { return im.settled >= target; });
}

std::uint64_t Journal::appended() const {
  if (!ok_) return 0;
  std::lock_guard lock(impl_->mutex);
  return impl_->submitted;
}

std::uint64_t Journal::written() const {
  if (!ok_) return 0;
  std::lock_guard lock(impl_->mutex);
  return impl_->written;
}

std::uint64_t Journal::dropped() const {
  if (!ok_) return 0;
  std::lock_guard lock(impl_->mutex);
  return impl_->dropped;
}

void Journal::set_stats(const Registry* stats) const {
  if (!ok_) return;
  impl_->stats.store(stats, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->set("funnel.journal.queue_capacity",
               static_cast<double>(impl_->capacity));
    stats->declare_gauge("funnel.journal.queue_depth");
    stats->declare_counter("funnel.journal.events");
    stats->declare_counter("funnel.journal.bytes");
    stats->declare_counter("funnel.journal.dropped");
  }
}

void Journal::set_observer(std::function<void(const JournalEvent&)> observer) {
  if (!ok_) return;
  // Quiesce first so the writer thread never races the assignment; callers
  // are told to set the observer before appending or after a flush(), this
  // flush makes the former safe even mid-stream.
  flush();
  impl_->observer = std::move(observer);
}

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
