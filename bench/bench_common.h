// Shared configuration of the benchmark harness.
//
// Every bench reproducing a paper table/figure pulls its method parameters
// from here so the whole evaluation is consistent: one tuned setting per
// method, mirroring §4.1's "parameters set to the best for the
// corresponding algorithm's accuracy".
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "detect/classic_sst.h"
#include "detect/cusum.h"
#include "detect/ika_sst.h"
#include "detect/improved_sst.h"
#include "detect/mrls.h"
#include "evalkit/dataset.h"
#include "evalkit/evaluate.h"
#include "funnel/config.h"
#include "obs/export.h"
#include "obs/registry.h"

namespace funnel::bench {

/// The paper's negative-sample extrapolation factor (§4.2.1): counts from
/// the 72 sampled no-effect changes are scaled by 6194 / 72 ~ 86.
inline constexpr std::uint64_t kNegativeScale = 86;

inline core::FunnelConfig funnel_config() {
  return core::FunnelConfig{};  // paper defaults: omega 9, 7-min rule, DiD
}

inline evalkit::DetectorSpec improved_sst_spec() {
  evalkit::DetectorSpec spec;
  spec.name = "Improved SST";
  spec.make_scorer = [] {
    return std::make_unique<detect::ImprovedSst>(
        detect::SstGeometry{.omega = 9, .eta = 3});
  };
  spec.policy = {.threshold = 0.4, .persistence = 7, .patience = 10};
  return spec;
}

inline evalkit::DetectorSpec cusum_spec() {
  evalkit::DetectorSpec spec;
  spec.name = "CUSUM";
  spec.make_scorer = [] {
    return std::make_unique<detect::Cusum>(detect::CusumParams{});
  };
  // Threshold in accumulated-sigma units; tuned for best accuracy — high,
  // which is precisely what makes CUSUM slow to alarm (Fig. 5).
  spec.policy = {.threshold = 70.0, .persistence = 1};
  return spec;
}

inline evalkit::DetectorSpec mrls_spec() {
  evalkit::DetectorSpec spec;
  spec.name = "MRLS";
  spec.make_scorer = [] {
    return std::make_unique<detect::Mrls>(detect::MrlsParams{});
  };
  spec.policy = {.threshold = 7.0, .persistence = 3};
  return spec;
}

/// The paper-scale evaluation dataset: 19 services (as sampled in §4.1),
/// 72 changes with injected KPI changes + 72 without, 31 days of history
/// for the 30-day baseline, service-wide confounders.
inline evalkit::DatasetParams paper_dataset_params(bool quick) {
  evalkit::DatasetParams p;
  p.seed = 20151201;  // CoNEXT'15 conference date
  p.services = quick ? 6 : 19;
  p.servers_per_service = 6;
  p.treated_servers = 2;
  p.positive_changes = quick ? 12 : 72;
  p.negative_changes = quick ? 12 : 72;
  p.history_days = 31;
  p.confounder_probability = 0.35;
  return p;
}

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// `--threads N` for the parallel assessment engine; defaults to 0
/// (hardware concurrency). 1 forces the serial baseline.
inline std::size_t threads_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  return 0;
}

/// `--stats`: print the run's self-telemetry (Prometheus text) to stderr.
inline bool stats_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) return true;
  }
  return false;
}

/// `--sst-fast` / `--no-cascade`, with the same semantics as the tools:
/// --sst-fast switches the assessment onto the SST hot path (warm-start
/// fast scorer + pre-filter cascade); --no-cascade keeps the fast scorer
/// but scores every window.
inline void apply_sst_args(core::FunnelConfig& cfg, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sst-fast") == 0) {
      cfg.sst_fast = true;
      cfg.sst_cascade = true;
    } else if (std::strcmp(argv[i], "--no-cascade") == 0) {
      cfg.sst_cascade = false;
    }
  }
}

/// `--stats-json FILE`: write the telemetry snapshot as JSON.
inline const char* stats_json_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Dump a registry per the two flags above. Stats go to stderr/a file so
/// the table output on stdout stays clean for diffing across runs.
inline void dump_stats(const obs::Registry& reg, bool print,
                       const char* json_path) {
  if (!print && json_path == nullptr) return;
  const obs::Snapshot snap = reg.snapshot();
  if (print) std::fputs(obs::prometheus_text(snap).c_str(), stderr);
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return;
    }
    out << obs::snapshot_json(snap) << '\n';
  }
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace funnel::bench
