#include "common/strings.h"

#include <sstream>

namespace funnel {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string format_percent(double ratio, int precision) {
  return format_fixed(ratio * 100.0, precision) + "%";
}

}  // namespace funnel
