// Confusion-matrix bookkeeping for the evaluation (§4.2).
#pragma once

#include <cstdint>
#include <string>

namespace funnel::evalkit {

struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;

  void add(bool truth, bool predicted, std::uint64_t weight = 1);

  ConfusionMatrix& operator+=(const ConfusionMatrix& other);

  /// Scale every cell (the §4.2.1 x86 synthetic extrapolation of the
  /// unchanged-change sample to the full population).
  ConfusionMatrix scaled(std::uint64_t factor) const;

  std::uint64_t total() const { return tp + tn + fp + fn; }

  /// TP / (TP + FP); 1 when no positives were predicted (matches the
  /// paper's convention of reporting 100% precision for all-negative).
  double precision() const;
  /// TP / (TP + FN); 1 when there were no positive items.
  double recall() const;
  /// TN / (TN + FP); 1 when there were no negative items.
  double tnr() const;
  /// (TP + TN) / total; 0 on empty.
  double accuracy() const;

  std::string to_string() const;
};

}  // namespace funnel::evalkit
