// Fixed-size thread pool for the embarrassingly-parallel fan-outs of the
// assessment engine (per-KPI scoring inside one change, per-change batches
// inside a window).
//
// Design constraints, in order:
//   * deterministic callers: parallel_for hands the body an index so results
//     go into pre-sized slots — output never depends on scheduling;
//   * no work stealing, no task dependencies: a batch is an atomic claim
//     counter over [begin, end) that idle workers and the calling thread
//     drain together. The caller always participates, so a nested
//     parallel_for issued from inside a worker completes even when every
//     other worker is busy (the initiator drains its own batch) — no
//     circular wait, no deadlock;
//   * exceptions propagate: the first exception thrown by any body is
//     captured and rethrown on the calling thread after the batch finishes
//     (remaining indices still run — batches are small and cancellation
//     would complicate the completion accounting for no benefit here).
//
// The repo-wide threading model (who runs on which thread, nesting rules,
// what may be shared) is documented in docs/CONCURRENCY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/registry.h"

namespace funnel {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 picks the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; outstanding submitted tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Number of distinct execution slots a parallel_for body can observe:
  /// one per worker plus one for the calling thread (which helps drain its
  /// own batches). Size per-slot scratch (e.g. warm-started scorers) by
  /// this.
  std::size_t slots() const { return workers_.size() + 1; }

  /// Slot of the calling thread: the worker index when called from a pool
  /// worker, size() otherwise.
  std::size_t this_slot() const;

  /// 0 -> hardware concurrency (at least 1), anything else verbatim.
  static std::size_t resolve_threads(std::size_t requested);

  /// Attach a telemetry registry (null detaches). The pool then records
  /// `pool.tasks_executed`, queue-wait and task-run histograms, and
  /// busy/idle microsecond counters (worker utilization =
  /// busy / (busy + idle)). The registry must outlive the pool. Tasks
  /// already queued keep the stamping decision made at enqueue time.
  void set_stats(const obs::Registry* stats);

  /// Run `body(index, slot)` for every index in [begin, end), distributing
  /// indices over the workers and the calling thread. Blocks until every
  /// index has run; rethrows the first exception a body threw. `slot` is
  /// stable for the executing thread (see slots()) and distinct bodies
  /// running concurrently always observe distinct slots. An empty or
  /// inverted range is a no-op. The caller's ambient trace context
  /// (obs/trace.h) is captured at the call and re-installed around every
  /// body, so spans opened inside tasks attach under the caller's span
  /// regardless of which thread runs them.
  using ForBody = std::function<void(std::size_t index, std::size_t slot)>;
  void parallel_for(std::size_t begin, std::size_t end, const ForBody& body);

  /// Enqueue a single task; the future carries the result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

 private:
  struct ForBatch;

  /// A queued task plus its enqueue stamp (zero when telemetry is off, so
  /// the uninstrumented path never reads the clock).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t worker_index);
  void run_batch(const std::shared_ptr<ForBatch>& batch) const;

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::atomic<const obs::Registry*> stats_{nullptr};
};

}  // namespace funnel
