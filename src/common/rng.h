// Deterministic random number generation.
//
// Every stochastic component in the repository (workload generators,
// scenario builders, noise injectors) draws from an explicitly-seeded Rng so
// that tests and benchmark tables are bit-reproducible across runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace funnel {

/// A seedable random source wrapping a 64-bit Mersenne twister.
///
/// The class is cheap to copy-construct from a seed and supports `split()`
/// for handing independent streams to sub-generators (each split derives a
/// new seed from the parent stream, so sibling streams never correlate).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDu) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Exponential draw with the given rate.
  double exponential(double rate);

  /// Student-t-like heavy-tailed draw (ratio of normal to sqrt(chi2/dof)).
  double heavy_tailed(double dof);

  /// An independent child generator; advancing the child does not advance
  /// this generator further.
  Rng split();

  /// Shuffle a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace funnel
