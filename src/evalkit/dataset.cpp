#include "evalkit/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "workload/stream.h"

namespace funnel::evalkit {
namespace {

using tsdb::EntityKind;
using tsdb::KpiClass;
using tsdb::MetricId;
using workload::KpiStream;

const std::vector<std::string> kServerKpis = {"cpu_context_switch",
                                              "memory_utilization"};
const std::vector<std::string> kInstanceKpis = {"page_view_count",
                                                "response_delay",
                                                "error_count"};

std::string service_name(int i) {
  std::string s = "svc";
  if (i < 10) s += '0';
  s += std::to_string(i);
  return s;
}

std::string server_name(int svc, int srv) {
  return service_name(svc) + "-srv" + std::to_string(srv);
}

std::unique_ptr<workload::KpiGenerator> make_generator(
    const std::string& kpi, Rng rng) {
  const KpiClass c = kpi_class_of(kpi);
  switch (c) {
    case KpiClass::kSeasonal: {
      workload::SeasonalParams p;
      p.base = 100.0;
      p.daily_amplitude = 40.0;
      p.second_harmonic = 12.0;
      p.weekly_amplitude = 10.0;
      p.noise_sigma = 2.0;
      return workload::make_seasonal(p, rng);
    }
    case KpiClass::kStationary: {
      workload::StationaryParams p;
      p.level = 50.0;
      p.noise_sigma = 1.0;
      return workload::make_stationary(p, rng);
    }
    case KpiClass::kVariable: {
      workload::VariableParams p;
      p.level = 200.0;
      p.ar_coefficient = 0.6;
      p.burst_sigma = 8.0;
      p.spike_rate = 0.008;
      p.spike_scale = 40.0;
      return workload::make_variable(p, rng);
    }
  }
  throw InvalidArgument("unknown KPI class");
}

struct Builder {
  DatasetParams params;
  Rng rng;
  std::unique_ptr<EvalDataset> ds = std::make_unique<EvalDataset>();

  // Streams keyed by metric id; service KPIs are aggregated afterwards.
  std::map<MetricId, std::unique_ptr<KpiStream>> streams;

  // Exact injection record: (change, metric) pairs carrying an effect.
  std::set<std::pair<changes::ChangeId, MetricId>> induced;

  MinuteTime total_minutes = 0;

  explicit Builder(const DatasetParams& p) : params(p), rng(p.seed) {
    FUNNEL_REQUIRE(p.services >= 1, "need at least one service");
    FUNNEL_REQUIRE(p.treated_servers >= 1 &&
                       p.treated_servers < p.servers_per_service,
                   "treated subset must be a strict subset of the servers");
    ds->params = p;
  }

  void build_topology() {
    for (int s = 0; s < params.services; ++s) {
      const std::string svc = service_name(s);
      ds->topo.add_service(svc);
      for (int v = 0; v < params.servers_per_service; ++v) {
        ds->topo.add_server(svc, server_name(s, v));
      }
    }
    // Deterministic clusters of three: {0,1,2}, {3,4,5}, ... — related
    // services stay small so change scheduling can keep each cluster's
    // changes far enough apart to leave ground truth exact.
    for (int s = 0; s + 1 < params.services; ++s) {
      if (s % 3 != 2) {
        ds->topo.add_relation(service_name(s), service_name(s + 1));
      }
    }
  }

  void create_streams() {
    for (int s = 0; s < params.services; ++s) {
      const std::string svc = service_name(s);
      for (int v = 0; v < params.servers_per_service; ++v) {
        const std::string srv = server_name(s, v);
        for (const std::string& kpi : kServerKpis) {
          streams.emplace(tsdb::server_metric(srv, kpi),
                          std::make_unique<KpiStream>(
                              make_generator(kpi, rng.split())));
        }
        const std::string inst = topology::instance_name(svc, srv);
        for (const std::string& kpi : kInstanceKpis) {
          streams.emplace(tsdb::instance_metric(inst, kpi),
                          std::make_unique<KpiStream>(
                              make_generator(kpi, rng.split())));
        }
      }
    }
  }

  // One change-day schedule: changes are assigned round-robin to clusters
  // and spaced so that no two changes within a cluster (the maximal set of
  // mutually reachable services) fall closer than ~2 assessment windows.
  void record_changes() {
    const int total_changes = params.positive_changes + params.negative_changes;
    const int clusters = (params.services + 2) / 3;
    const int per_cluster = (total_changes + clusters - 1) / clusters;
    // A confounder shock can extend to change_time + ~100 minutes; keep the
    // next change in the same cluster far enough away that no shock leaks
    // into its 60-minute pre-window.
    const MinuteTime min_spacing = 170;
    const MinuteTime day = kMinutesPerDay;
    const int change_days = static_cast<int>(
        (per_cluster * min_spacing + day - 1) / day);
    ds->change_day_start =
        static_cast<MinuteTime>(params.history_days) * kMinutesPerDay;
    total_minutes = ds->change_day_start +
                    static_cast<MinuteTime>(std::max(change_days, 1)) * day;

    // Interleave positive / negative changes deterministically but shuffle
    // which slots are positive.
    std::vector<bool> positive(static_cast<std::size_t>(total_changes), false);
    for (int i = 0; i < params.positive_changes; ++i) {
      positive[static_cast<std::size_t>(i)] = true;
    }
    rng.shuffle(positive);

    std::vector<int> cluster_slot(static_cast<std::size_t>(clusters), 0);
    for (int i = 0; i < total_changes; ++i) {
      const int cluster = i % clusters;
      const int slot = cluster_slot[static_cast<std::size_t>(cluster)]++;
      // Alternate services within the cluster.
      const int first_svc = cluster * 3;
      const int span = std::min(3, params.services - first_svc);
      const int svc_idx = first_svc + slot % span;
      const std::string svc = service_name(svc_idx);

      changes::SoftwareChange ch;
      ch.service = svc;
      ch.type = rng.bernoulli(0.5) ? changes::ChangeType::kSoftwareUpgrade
                                   : changes::ChangeType::kConfigChange;
      ch.time = ds->change_day_start + 90 +
                static_cast<MinuteTime>(slot) * min_spacing +
                rng.uniform_int(0, 30);
      FUNNEL_REQUIRE(ch.time + 120 < total_minutes,
                     "change schedule exceeds the simulated horizon");

      const auto& servers = ds->topo.servers_of(svc);
      if (rng.bernoulli(params.dark_fraction)) {
        ch.mode = changes::LaunchMode::kDark;
        std::vector<std::string> pool = servers;
        rng.shuffle(pool);
        pool.resize(static_cast<std::size_t>(params.treated_servers));
        ch.servers = std::move(pool);
      } else {
        ch.mode = changes::LaunchMode::kFull;
        ch.servers = servers;
      }
      ch.description = positive[static_cast<std::size_t>(i)]
                           ? "synthetic change with injected effect"
                           : "synthetic no-op change";
      const changes::ChangeId id = ds->log.record(std::move(ch), ds->topo);
      if (positive[static_cast<std::size_t>(i)]) {
        ds->positive_change_ids.push_back(id);
      } else {
        ds->negative_change_ids.push_back(id);
      }
    }
  }

  workload::Effect make_effect(MinuteTime tc, double delta) {
    if (rng.uniform() < params.ramp_fraction) {
      return workload::Ramp{tc, tc + params.ramp_duration, delta};
    }
    return workload::LevelShift{tc, delta};
  }

  void inject_for_metric(changes::ChangeId id, const MetricId& metric,
                         MinuteTime tc, double delta) {
    const auto it = streams.find(metric);
    FUNNEL_REQUIRE(it != streams.end(),
                   "no stream for metric " + metric.to_string());
    // Per-entity jitter: replicas of one service react similarly but not
    // identically.
    const double jitter = 1.0 + rng.uniform(-0.1, 0.1);
    it->second->add_effect(make_effect(tc, delta * jitter));
    induced.emplace(id, metric);
  }

  void inject_effects() {
    for (const changes::ChangeId id : ds->positive_change_ids) {
      const changes::SoftwareChange& ch = ds->log.get(id);
      const core::ImpactSet set = core::identify_impact_set(ch, ds->topo);

      // Pick the KPI names this change perturbs.
      std::vector<std::string> names = kServerKpis;
      names.insert(names.end(), kInstanceKpis.begin(), kInstanceKpis.end());
      rng.shuffle(names);
      names.resize(static_cast<std::size_t>(
          std::min<int>(params.kpis_affected_per_change,
                        static_cast<int>(names.size()))));

      for (const std::string& kpi : names) {
        const double sigma = kpi_noise_sigma(kpi);
        const double magnitude =
            rng.uniform(params.effect_min_sigma, params.effect_max_sigma) *
            sigma;
        const double delta = rng.bernoulli(0.5) ? magnitude : -magnitude;
        const bool server_kpi =
            std::find(kServerKpis.begin(), kServerKpis.end(), kpi) !=
            kServerKpis.end();
        if (server_kpi) {
          for (const std::string& srv : set.tservers) {
            inject_for_metric(id, tsdb::server_metric(srv, kpi), ch.time,
                              delta);
          }
        } else {
          for (const std::string& inst : set.tinstances) {
            inject_for_metric(id, tsdb::instance_metric(inst, kpi), ch.time,
                              delta);
          }
          // The changed service's aggregated KPI inherits the effect
          // diluted by the untreated replicas; label it change-induced only
          // when the diluted effect is visible above the aggregate's
          // (averaged-down) noise — as a human labeler would.
          const auto n_inst =
              static_cast<double>(ds->topo.instances_of(ch.service).size());
          const double fraction =
              static_cast<double>(set.tinstances.size()) / n_inst;
          const double aggregate_sigma = sigma / std::sqrt(n_inst);
          if (std::abs(delta) * fraction >=
              params.aggregate_label_min_sigma * aggregate_sigma) {
            induced.emplace(id, tsdb::service_metric(ch.service, kpi));
          }
        }
      }

      // Propagation into affected services: every instance of the affected
      // service moves together (§3.1), realized by injecting a smaller
      // effect into all of its instances.
      for (const std::string& affected : set.affected_services) {
        if (!rng.bernoulli(params.propagate_probability)) continue;
        const std::string& kpi =
            kInstanceKpis[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(kInstanceKpis.size()) - 1))];
        const double sigma = kpi_noise_sigma(kpi);
        const double delta = (rng.bernoulli(0.5) ? 1.0 : -1.0) *
                             rng.uniform(params.effect_min_sigma,
                                         params.effect_max_sigma) *
                             sigma;
        for (const std::string& inst : ds->topo.instances_of(affected)) {
          const MetricId m = tsdb::instance_metric(inst, kpi);
          const auto it = streams.find(m);
          FUNNEL_REQUIRE(it != streams.end(), "missing affected stream");
          it->second->add_effect(make_effect(ch.time, delta));
        }
        induced.emplace(id, tsdb::service_metric(affected, kpi));
      }
    }

    // Confounders: service-wide shocks coinciding with changes (positive or
    // negative) — same shape on treated and control entities, per KPI name.
    // Only dark-launched changes get coinciding confounders: DiD's control
    // group cancels them there, whereas under Full Launching a concurrent
    // non-seasonal shock is indistinguishable from the change by design
    // (Fig. 3 has no control group on that path) — the paper's production
    // full launches did not coincide with attacks.
    for (const changes::SoftwareChange& ch : ds->log.all()) {
      if (!ch.dark_launched()) continue;
      if (!rng.bernoulli(params.confounder_probability)) continue;
      const MinuteTime onset = ch.time + rng.uniform_int(-5, 10);
      const MinuteTime duration = rng.uniform_int(40, 90);
      std::vector<std::string> names = kServerKpis;
      names.insert(names.end(), kInstanceKpis.begin(), kInstanceKpis.end());
      for (const std::string& kpi : names) {
        const double amp = (rng.bernoulli(0.5) ? 1.0 : -1.0) *
                           rng.uniform(3.0, 5.0) * kpi_noise_sigma(kpi);
        const workload::SharedShock shock =
            rng.bernoulli(0.5)
                ? workload::make_event_shock(onset, duration, amp)
                : workload::make_attack_shock(onset, duration, amp,
                                              rng.split());
        for (auto& [metric, stream] : streams) {
          const bool same_service =
              (metric.kind == EntityKind::kServer &&
               ds->topo.service_of_server(metric.entity) == ch.service) ||
              (metric.kind == EntityKind::kInstance &&
               topology::parse_instance_name(metric.entity).first ==
                   ch.service);
          if (same_service && metric.kpi == kpi) stream->add_shock(shock);
        }
      }
    }

    // Transient distractor spikes near some changes: must NOT be reported
    // (the 7-minute persistence rule exists for these).
    for (const changes::SoftwareChange& ch : ds->log.all()) {
      if (!rng.bernoulli(0.25)) continue;
      const core::ImpactSet set = core::identify_impact_set(ch, ds->topo);
      if (set.tinstances.empty()) continue;
      const std::string& inst = set.tinstances.front();
      const std::string& kpi =
          kInstanceKpis[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(kInstanceKpis.size()) - 1))];
      const auto it = streams.find(tsdb::instance_metric(inst, kpi));
      if (it == streams.end()) continue;
      it->second->add_effect(workload::TransientSpike{
          ch.time + rng.uniform_int(2, 20), rng.uniform_int(1, 3),
          (rng.bernoulli(0.5) ? 1.0 : -1.0) * 6.0 * kpi_noise_sigma(kpi)});
    }
  }

  void materialize_streams() {
    // Render server and instance streams, then aggregate service KPIs.
    for (auto& [metric, stream] : streams) {
      tsdb::TimeSeries s(0, workload::render(*stream, 0, total_minutes));
      ds->store.insert(metric, std::move(s));
    }
    for (int si = 0; si < params.services; ++si) {
      const std::string svc = service_name(si);
      for (const std::string& kpi : kInstanceKpis) {
        std::vector<const tsdb::TimeSeries*> parts;
        for (const std::string& inst : ds->topo.instances_of(svc)) {
          parts.push_back(&ds->store.series(tsdb::instance_metric(inst, kpi)));
        }
        ds->store.insert(tsdb::service_metric(svc, kpi),
                         tsdb::aggregate_mean(parts, 0, total_minutes));
      }
    }
  }

  void collect_items() {
    for (const changes::SoftwareChange& ch : ds->log.all()) {
      const core::ImpactSet set = core::identify_impact_set(ch, ds->topo);
      for (const MetricId& metric : core::impact_metrics(set, ds->store)) {
        ItemTruth item;
        item.change_id = ch.id;
        item.metric = metric;
        item.kpi_class = kpi_class_of(metric.kpi);
        item.change_induced = induced.contains({ch.id, metric});
        item.effect_start = ch.time;
        ds->items.push_back(std::move(item));
      }
    }
  }

  std::unique_ptr<EvalDataset> run() {
    build_topology();
    create_streams();
    record_changes();
    inject_effects();
    materialize_streams();
    collect_items();
    return std::move(ds);
  }
};

}  // namespace

bool EvalDataset::is_positive_change(changes::ChangeId id) const {
  return std::find(positive_change_ids.begin(), positive_change_ids.end(),
                   id) != positive_change_ids.end();
}

tsdb::KpiClass kpi_class_of(const std::string& kpi_name) {
  if (kpi_name == "page_view_count") return KpiClass::kSeasonal;
  if (kpi_name == "cpu_context_switch" || kpi_name == "response_delay") {
    return KpiClass::kVariable;
  }
  return KpiClass::kStationary;
}

const std::vector<std::string>& server_kpi_names() { return kServerKpis; }
const std::vector<std::string>& instance_kpi_names() { return kInstanceKpis; }

double kpi_noise_sigma(const std::string& kpi_name) {
  switch (kpi_class_of(kpi_name)) {
    case KpiClass::kSeasonal:
      return 2.0;
    case KpiClass::kStationary:
      return 1.0;
    case KpiClass::kVariable:
      // Marginal sigma of the AR(1): burst_sigma / sqrt(1 - phi^2).
      return 8.0 / std::sqrt(1.0 - 0.6 * 0.6);
  }
  return 1.0;
}

std::unique_ptr<EvalDataset> build_dataset(const DatasetParams& params) {
  Builder b(params);
  return b.run();
}

}  // namespace funnel::evalkit
