// FunnelService — the multi-tenant assessment daemon (docs/SERVICE.md).
//
// One process hosts many fully isolated tenants (service/tenant.h) behind
// the PR 9 telemetry plane's HTTP server. The paper's deployment watches a
// whole internet-scale portfolio — hundreds of services, ~24k changes/day
// (§1) — from shared assessment infrastructure; this is that shape: shared
// process, shared listener, nothing else shared.
//
// HTTP surface (all bodies newline-delimited text, responses JSON):
//   POST /v1/ingest/<tenant>      service,server,kpi,minute,value
//   POST /v1/changes/<tenant>     time,service,mode,servers,description
//   GET  /v1/report/<tenant>      finalized assessment reports
//   GET  /v1/status/<tenant>      counters, seqs, quarantine state
//   GET  /v1/seq/<tenant>         {"recovered_seq":..,"applied_seq":..} —
//                                 the crash-resume cursor clients read back
//   POST /v1/checkpoint/<tenant>  flush + durable checkpoint
//   POST /v1/maintenance/<tenant>?now=M   expire gap-starved watches
//   POST /v1/quarantine/<tenant>  body = reason (fault-drill hook)
//   GET  /v1/tenants              tenant list with status
// plus the plane's own /metrics /healthz /varz /statusz.
//
// Refusal ladder (per request, cheapest first; docs/SERVICE.md "Quotas &
// admission"):
//   404 unknown tenant -> 503 quarantined (reason in body) -> 429 busy
//   (tenant mutex try_lock failed; Retry-After: 1) -> 429 over quota
//   (token bucket / queue share; computed Retry-After) -> work.
// A tenant that is slow, dirty or over quota therefore costs other tenants
// nothing: its requests bounce at its own door and never hold an HTTP
// worker hostage (head-of-line isolation, service_test proves the verdict
// bytes of a healthy tenant are unchanged by a neighbour's abuse).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/plane.h"
#include "service/tenant.h"

namespace funnel::service {

struct ServiceOptions {
  /// Telemetry-plane options; plane.http.port = 0 binds an ephemeral port.
  obs::PlaneOptions plane;

  /// Root directory for per-tenant persistence: tenant <name> lives under
  /// <data_root>/<name>/. Empty = every tenant fully in-memory.
  std::string data_root;

  /// Template for tenants created without explicit options (data_dir and
  /// name are filled per tenant).
  TenantOptions tenant_defaults;

  /// POST to an unknown tenant creates it from tenant_defaults instead of
  /// answering 404.
  bool allow_dynamic_tenants = false;

  /// Optional shared telemetry registry (also consumed by the plane).
  const obs::Registry* stats = nullptr;
};

class FunnelService {
 public:
  explicit FunnelService(ServiceOptions options);
  ~FunnelService();

  FunnelService(const FunnelService&) = delete;
  FunnelService& operator=(const FunnelService&) = delete;

  /// Create (or recover, when data_root is set) a tenant before start().
  /// Also callable while serving — tenant creation takes the registry
  /// mutex, lookups share it briefly. Returns the tenant (throws
  /// InvalidArgument on a duplicate name).
  Tenant& add_tenant(const std::string& name);
  Tenant& add_tenant(TenantOptions options);

  /// Tenant lookup; nullptr when unknown. Pointers stay valid for the
  /// service's lifetime (tenants are never destroyed while serving).
  Tenant* find_tenant(const std::string& name);

  /// Bind + serve (false with *error when the socket fails or the build is
  /// FUNNEL_OBS=OFF, which compiles the HTTP server out).
  bool start(std::string* error = nullptr);
  void stop();

  /// Checkpoint every persistent tenant (the SIGTERM path: stop() after
  /// this gives a clean shutdown the next boot recovers from instantly).
  void checkpoint_all();

  /// Re-apply quota config to every tenant (the SIGHUP reload path).
  void reload_quotas(const QuotaConfig& quota);

  int port() const;
  std::size_t tenant_count();
  obs::TelemetryPlane& plane() { return plane_; }
  const ServiceOptions& options() const { return options_; }

  /// Seconds on the service's monotonic clock — the time base admit() runs
  /// on (virtualizable in tests via Tenant::admit directly).
  double now_s() const;

 private:
  Tenant* resolve(const std::string& name, bool create_if_dynamic);
  obs::HttpResponse dispatch(const obs::HttpRequest& req);
  TenantOptions options_for(const std::string& name) const;

  ServiceOptions options_;
  obs::TelemetryPlane plane_;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex tenants_mutex_;  ///< guards the map shape, not the tenants
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace funnel::service
