// Integration tests for pipeline self-telemetry: the counters the assessor
// and the online engine record must agree with the reports they produce,
// reports must stay byte-identical with telemetry on or off (and for every
// thread count), the online engine must stamp `determined_at` and record
// time-to-verdict, and the default-on registry must cost < 2% on
// assess_window versus running with a null registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "evalkit/dataset.h"
#include "funnel/assessor.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "obs/registry.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

class FunnelStats : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    evalkit::DatasetParams p;
    p.seed = 424242;
    p.services = 2;
    p.servers_per_service = 4;
    p.treated_servers = 2;
    p.positive_changes = 2;
    p.negative_changes = 3;
    p.history_days = 4;
    p.confounder_probability = 0.4;
    ds_ = evalkit::build_dataset(p).release();
  }

  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }

  static FunnelConfig config(std::size_t threads, const obs::Registry* reg) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;  // the short history has no 30-day baseline
    cfg.num_threads = threads;
    cfg.stats = reg;
    return cfg;
  }

  static MinuteTime window_end() {
    MinuteTime last = 0;
    for (const auto& ch : ds_->log.all()) last = std::max(last, ch.time);
    return last + 1;
  }

  static std::vector<AssessmentReport> run_window(std::size_t threads,
                                                  const obs::Registry* reg) {
    const Funnel funnel(config(threads, reg), ds_->topo, ds_->log,
                        ds_->store);
    return funnel.assess_window(0, window_end());
  }

  static std::string rendered(const std::vector<AssessmentReport>& reports) {
    std::string out;
    for (const AssessmentReport& r : reports) {
      out += to_json(r);
      out += '\n';
    }
    return out;
  }

  static evalkit::EvalDataset* ds_;
};

evalkit::EvalDataset* FunnelStats::ds_ = nullptr;

TEST_F(FunnelStats, BatchCountersMatchReportAggregates) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  obs::Registry reg;
  const std::vector<AssessmentReport> reports = run_window(1, &reg);
  ASSERT_FALSE(reports.empty());

  std::uint64_t kpis = 0, detected = 0;
  std::map<std::string, std::uint64_t> by_cause;
  for (const AssessmentReport& r : reports) {
    kpis += r.kpis_examined();
    detected += r.kpi_changes_detected();
    for (const ItemVerdict& v : r.items) ++by_cause[to_string(v.cause)];
  }

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("funnel.assess.changes_assessed"),
            reports.size());
  EXPECT_EQ(snap.counters.at("funnel.assess.kpis_scored"), kpis);
  EXPECT_EQ(snap.counters.at("funnel.assess.alarms_raised"), detected);
  EXPECT_EQ(snap.counters.at("funnel.assess_window.batches"), 1u);
  for (const auto& [cause, count] : by_cause) {
    EXPECT_EQ(snap.counters.at("funnel.assess.verdicts." + cause), count)
        << cause;
  }
  // One SST span per KPI scored; DiD runs exactly for the detected ones.
  EXPECT_EQ(snap.histograms.at("funnel.assess.sst_us").count, kpis);
  EXPECT_EQ(snap.histograms.at("funnel.assess.did_us").count, detected);
  EXPECT_EQ(snap.histograms.at("funnel.assess.total_us").count,
            reports.size());
}

TEST_F(FunnelStats, ReportsByteIdenticalWithTelemetryOnOrOff) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const std::string without = rendered(run_window(threads, nullptr));
    obs::Registry reg;
    const std::string with = rendered(run_window(threads, &reg));
    EXPECT_EQ(without, with) << "telemetry leaked into reports at threads="
                             << threads;
  }
}

// Online scenario: dark launch on 2 of 4 servers, level shift on the
// treated KPIs at the change minute (mirrors funnel_online_test).
struct OnlineScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  tsdb::MetricStore store;
  MinuteTime tc = 4 * kMinutesPerDay + 300;
  changes::ChangeId change_id = 0;
  std::vector<std::pair<tsdb::MetricId, std::unique_ptr<workload::KpiStream>>>
      streams;

  OnlineScenario() {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = tc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      auto stream = std::make_unique<workload::KpiStream>(
          workload::make_stationary(p, rng.split()));
      if (s == "s1" || s == "s2") {
        stream->add_effect(workload::LevelShift{tc, 8.0});
      }
      const tsdb::MetricId id = tsdb::server_metric(s, "mem");
      workload::materialize(*stream, store, id, 0, tc);
      streams.emplace_back(id, std::move(stream));
    }
  }

  AssessmentReport run(const obs::Registry* reg) {
    FunnelConfig cfg;
    cfg.baseline_days = 3;
    cfg.stats = reg;
    FunnelOnline online(cfg, topo, log, store);
    AssessmentReport report;
    online.on_report([&](const AssessmentReport& r) { report = r; });
    online.watch(change_id);
    for (MinuteTime t = tc; t < tc + 61; ++t) {
      for (auto& [id, stream] : streams) store.append(id, t, stream->sample(t));
    }
    return report;
  }
};

TEST(FunnelStatsOnline, DeterminedAtStampedIndependentOfTelemetry) {
  // The confirming minute is part of the report, not of telemetry: it must
  // be present with a null registry (and in FUNNEL_OBS=OFF builds).
  OnlineScenario sc;
  const AssessmentReport report = sc.run(nullptr);
  ASSERT_GE(report.kpi_changes_caused(), 2u);
  for (const ItemVerdict& v : report.items) {
    if (!v.caused_by_software_change()) continue;
    ASSERT_TRUE(v.determined_at.has_value()) << v.metric.to_string();
    const MinuteTime ttv = *v.time_to_verdict(report.change_time);
    EXPECT_GE(ttv, 9);   // min_did_window gates the earliest verdict
    EXPECT_LE(ttv, 60);  // and the horizon bounds it
  }
}

TEST(FunnelStatsOnline, TimeToVerdictHistogramMatchesReport) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  OnlineScenario sc;
  obs::Registry reg;
  const AssessmentReport report = sc.run(&reg);
  ASSERT_GE(report.kpi_changes_caused(), 2u);

  MinuteTime ttv_sum = 0;
  for (const ItemVerdict& v : report.items) {
    if (v.caused_by_software_change()) {
      ttv_sum += *v.time_to_verdict(report.change_time);
    }
  }
  const obs::Snapshot snap = reg.snapshot();
  const obs::HistogramSnapshot& ttv =
      snap.histograms.at("funnel.online.time_to_verdict_min");
  EXPECT_EQ(ttv.count, report.kpi_changes_caused());
  EXPECT_DOUBLE_EQ(ttv.sum, static_cast<double>(ttv_sum));
  EXPECT_EQ(snap.counters.at("funnel.online.verdicts_confirmed"),
            report.kpi_changes_caused());
  EXPECT_EQ(snap.counters.at("funnel.online.reports_finalized"), 1u);
  EXPECT_GT(snap.counters.at("funnel.online.samples_ingested"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("funnel.online.active_watches"), 0.0);
}

TEST_F(FunnelStats, DefaultOnOverheadUnderTwoPercent) {
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF (nothing to measure)";
  // Satellite requirement: attaching the registry must cost < 2% on
  // assess_window versus the null-registry no-op path. The true per-event
  // cost is a map lookup + relaxed store (~tens of ns), far under the
  // bound; min-of-N with retries absorbs scheduler noise on busy CI boxes.
  using clock = std::chrono::steady_clock;
  const auto min_of = [&](const obs::Registry* reg, int n) {
    double best = 1e300;
    for (int i = 0; i < n; ++i) {
      const auto start = clock::now();
      const std::size_t count = run_window(1, reg).size();
      const double ms = std::chrono::duration<double, std::milli>(
                            clock::now() - start)
                            .count();
      EXPECT_GT(count, 0u);  // keep the work honest
      best = std::min(best, ms);
    }
    return best;
  };
  run_window(1, nullptr);  // warm caches once

  bool ok = false;
  double worst_ratio = 0.0;
  for (int round = 0; round < 4 && !ok; ++round) {
    const double base = min_of(nullptr, 3);
    obs::Registry reg;
    const double with = min_of(&reg, 3);
    const double ratio = with / base;
    worst_ratio = std::max(worst_ratio, ratio);
    ok = ratio < 1.02;
  }
  EXPECT_TRUE(ok) << "telemetry overhead exceeded 2% in every round "
                     "(last ratios up to "
                  << worst_ratio << "x)";
}

}  // namespace
}  // namespace funnel::core
