// Table 1 — Precision, Recall, TNR and Accuracy of FUNNEL, Improved SST
// (without DiD), CUSUM and MRLS on seasonal, stationary and variable items.
//
// Protocol (§4.1-§4.2): 72 software changes with injected KPI changes plus
// 72 without, over 19 services; every (change, entity, KPI) pair in the
// impact set is an item; counts from the no-effect changes are scaled x86
// to extrapolate the sample to the full change population. Detection-only
// methods declare "induced" on any post-change alarm; FUNNEL runs the full
// Fig. 3 flow (improved IKA-SST + DiD).
//
// Run with --quick for a smaller dataset (6 services, 24 changes).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"

using namespace funnel;

namespace {

struct PaperRow {
  const char* type;
  double precision, recall, tnr, accuracy;
};

const PaperRow kPaper[4][3] = {
    {{"seasonal", 98.28, 100.00, 100.00, 100.00},
     {"stationary", 100.00, 100.00, 100.00, 100.00},
     {"variable", 68.47, 99.48, 99.88, 99.88}},
    {{"seasonal", 1.10, 100.00, 81.93, 81.96},
     {"stationary", 14.28, 100.00, 98.44, 98.44},
     {"variable", 15.04, 99.48, 98.50, 98.50}},
    {{"seasonal", 0.76, 84.21, 77.97, 77.98},
     {"stationary", 10.34, 98.52, 97.78, 97.78},
     {"variable", 17.92, 96.34, 98.82, 98.81}},
    {{"seasonal", 100.00, 87.72, 100.00, 99.98},
     {"stationary", 9.23, 97.33, 97.51, 97.51},
     {"variable", 0.61, 97.04, 57.85, 57.95}}};

void add_rows(Table& table, const evalkit::MethodResult& result,
              const PaperRow* paper) {
  const tsdb::KpiClass classes[3] = {tsdb::KpiClass::kSeasonal,
                                     tsdb::KpiClass::kStationary,
                                     tsdb::KpiClass::kVariable};
  for (int c = 0; c < 3; ++c) {
    const auto it = result.by_class.find(classes[c]);
    if (it == result.by_class.end()) continue;
    const evalkit::ConfusionMatrix& cm = it->second;
    table.add_row({result.method, paper[c].type, std::to_string(cm.total()),
                   format_percent(cm.precision()),
                   format_percent(cm.recall()), format_percent(cm.tnr()),
                   format_percent(cm.accuracy()),
                   format_fixed(paper[c].precision, 2) + "/" +
                       format_fixed(paper[c].recall, 2) + "/" +
                       format_fixed(paper[c].tnr, 2) + "/" +
                       format_fixed(paper[c].accuracy, 2)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  bench::print_header(
      "Table 1: accuracy of FUNNEL / Improved SST / CUSUM / MRLS by KPI type");

  std::printf("building the labeled dataset (%s)...\n",
              quick ? "quick" : "paper scale");
  const auto ds = evalkit::build_dataset(bench::paper_dataset_params(quick));
  std::printf("  %zu changes (%zu with injected effects), %zu items, "
              "%zu metrics\n",
              ds->log.size(), ds->positive_change_ids.size(),
              ds->items.size(), ds->store.metric_count());

  Table table({"method", "KPI type", "items(scaled)", "precision", "recall",
               "TNR", "accuracy", "paper(P/R/TNR/A %)"});

  std::printf("evaluating FUNNEL (improved IKA-SST + DiD)...\n");
  const evalkit::MethodResult funnel_result = evalkit::evaluate_funnel(
      *ds, bench::funnel_config(), bench::kNegativeScale);
  evalkit::MethodResult named = funnel_result;
  named.method = "FUNNEL";
  add_rows(table, named, kPaper[0]);

  std::printf("evaluating Improved SST (no DiD)...\n");
  add_rows(table,
           evalkit::evaluate_detector(*ds, bench::improved_sst_spec(), 60, 60,
                                      bench::kNegativeScale),
           kPaper[1]);

  std::printf("evaluating CUSUM...\n");
  add_rows(table,
           evalkit::evaluate_detector(*ds, bench::cusum_spec(), 60, 60,
                                      bench::kNegativeScale),
           kPaper[2]);

  std::printf("evaluating MRLS...\n");
  add_rows(table,
           evalkit::evaluate_detector(*ds, bench::mrls_spec(), 60, 60,
                                      bench::kNegativeScale),
           kPaper[3]);

  std::printf("\n%s\n", table.to_string().c_str());

  const auto total = funnel_result.total();
  std::printf("FUNNEL overall accuracy: %s (paper: >99.8%%)\n",
              format_percent(total.accuracy(), 2).c_str());
  std::printf(
      "\nShape checks vs the paper:\n"
      "  * FUNNEL should lead every method on every KPI type;\n"
      "  * Improved SST / CUSUM collapse in precision on seasonal KPIs\n"
      "    (they cannot exclude seasonality without DiD);\n"
      "  * MRLS collapses in precision/TNR on variable KPIs\n"
      "    (spike sensitivity).\n");
  return 0;
}
