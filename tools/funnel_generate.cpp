// funnel_generate — synthesize a KPI time series as CSV.
//
// Usage:
//   funnel_generate --class seasonal|stationary|variable [--minutes N]
//                   [--seed S] [--shift T,DELTA] [--ramp T0,T1,DELTA]
//                   [--spike T,DUR,DELTA] [--out FILE]
//                   [--faults SPEC] [--fault-seed S] [--data-dir DIR]
//
// Companion of funnel_detect_csv: produce a synthetic KPI with known
// injected changes, feed it to the detector, check what comes back.
// Effects may be repeated (e.g. two --shift options).
//
// --faults pushes the rendered series through the deterministic fault
// injector (workload/faults.h) before writing: e.g.
// --faults drop=0.05,nan=0.02x4,stuck=0.01x8 simulates a dirty collection
// pipeline. The (spec, --fault-seed) pair fully determines the damage, so
// a dirty fixture regenerates bit-identically. The realized fault counts
// go to stderr.
//
// --data-dir DIR additionally streams the finished series into the
// persistent segment store (docs/STORAGE.md) under the metric
// `server:host/kpi` — the id funnel_detect_csv's pipeline mode uses — and
// checkpoints, so a later `funnel_detect_csv --change-minute T --data-dir
// DIR` recovers the history from disk instead of re-inserting the CSV.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "tsdb/io.h"
#include "tsdb/store.h"
#include "workload/effects.h"
#include "workload/faults.h"
#include "workload/generators.h"
#include "workload/stream.h"

using namespace funnel;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --class seasonal|stationary|variable\n"
               "          [--minutes N] [--seed S] [--shift T,DELTA]\n"
               "          [--ramp T0,T1,DELTA] [--spike T,DUR,DELTA]\n"
               "          [--out FILE] [--faults SPEC] [--fault-seed S]\n"
               "          [--data-dir DIR]\n"
               "  fault SPEC: drop=R,nan=RxN,stuck=RxN,dup=R,reorder=R,"
               "late=RxN\n",
               argv0);
}

bool parse_numbers(const std::string& arg, std::vector<double>& out,
                   std::size_t expected) {
  out.clear();
  for (const std::string& f : split(arg, ',')) {
    try {
      out.push_back(std::stod(f));
    } catch (const std::exception&) {
      return false;
    }
  }
  return out.size() == expected;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cls;
  MinuteTime minutes = 1440;
  std::uint64_t seed = 1;
  std::string out_path;
  std::string data_dir;
  std::vector<workload::Effect> effects;
  workload::FaultSpec faults;
  std::uint64_t fault_seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    std::vector<double> nums;
    if (a == "--class") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      cls = v;
    } else if (a == "--minutes") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      minutes = std::atoll(v);
    } else if (a == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      out_path = v;
    } else if (a == "--data-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      data_dir = v;
    } else if (a == "--faults") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      try {
        faults = workload::parse_fault_spec(v);
      } catch (const funnel::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (a == "--fault-seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]), 2;
      fault_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--shift") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 2)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::LevelShift{
          static_cast<MinuteTime>(nums[0]), nums[1]});
    } else if (a == "--ramp") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 3)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::Ramp{static_cast<MinuteTime>(nums[0]),
                                       static_cast<MinuteTime>(nums[1]),
                                       nums[2]});
    } else if (a == "--spike") {
      const char* v = value();
      if (v == nullptr || !parse_numbers(v, nums, 3)) {
        return usage(argv[0]), 2;
      }
      effects.push_back(workload::TransientSpike{
          static_cast<MinuteTime>(nums[0]),
          static_cast<MinuteTime>(nums[1]), nums[2]});
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return 2;
    }
  }

  tsdb::KpiClass kpi_class;
  if (cls == "seasonal") {
    kpi_class = tsdb::KpiClass::kSeasonal;
  } else if (cls == "stationary") {
    kpi_class = tsdb::KpiClass::kStationary;
  } else if (cls == "variable") {
    kpi_class = tsdb::KpiClass::kVariable;
  } else {
    usage(argv[0]);
    return 2;
  }

  workload::KpiStream stream(workload::make_default(kpi_class, Rng(seed)));
  for (const auto& e : effects) stream.add_effect(e);
  tsdb::TimeSeries series(0, workload::render(stream, 0, minutes));
  if (!faults.empty()) {
    workload::FaultInjector injector(faults, fault_seed);
    series = workload::apply_faults(series, injector);
    const workload::FaultStats& fs = injector.stats();
    std::fprintf(stderr,
                 "injected faults (%s, seed %llu): %llu dropped, %llu nan, "
                 "%llu stuck, %llu duplicated, %llu reordered, %llu late\n",
                 workload::to_string(faults).c_str(),
                 static_cast<unsigned long long>(fault_seed),
                 static_cast<unsigned long long>(fs.dropped),
                 static_cast<unsigned long long>(fs.nans),
                 static_cast<unsigned long long>(fs.stuck),
                 static_cast<unsigned long long>(fs.duplicated),
                 static_cast<unsigned long long>(fs.reordered),
                 static_cast<unsigned long long>(fs.delayed));
  }

  try {
    if (out_path.empty()) {
      tsdb::write_series_csv(std::cout, series);
    } else {
      tsdb::save_series_csv(out_path, series);
      std::fprintf(stderr, "wrote %zu samples to %s\n", series.size(),
                   out_path.c_str());
    }
    if (!data_dir.empty()) {
      // Stream sample-by-sample (each one write-ahead-logged), then
      // checkpoint so the history lands in a columnar segment. Gaps stay
      // gaps: a NaN minute is appended as NaN, exactly what the CSV holds.
      tsdb::StoreOptions sopt;
      sopt.data_dir = data_dir;
      tsdb::MetricStore store(sopt);
      const tsdb::MetricId metric = tsdb::server_metric("host", "kpi");
      for (MinuteTime t = series.start_time(); t < series.end_time(); ++t) {
        store.append(metric, t, series.at(t));
      }
      store.checkpoint();
      std::fprintf(stderr, "wrote %zu samples to store %s (%s)\n",
                   series.size(), data_dir.c_str(),
                   metric.to_string().c_str());
    }
  } catch (const funnel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
