// FUNNEL's production detector: improved SST accelerated with the Implicit
// Krylov Approximation (§3.2.3, Idé & Tsuda 2007).
//
// Identical score semantics to ImprovedSst (Eq. 9-11) but with every dense
// decomposition replaced by the cheap path:
//   * the Gram matrices C = B·Bᵀ (past) and A·Aᵀ (future) are never formed —
//     HankelGramOperator applies them implicitly from the raw samples
//     ("matrix compression and implicit inner product calculation");
//   * the future eigen-directions β₁..β_eta are maintained by warm-started
//     block power iteration with Rayleigh-Ritz extraction: consecutive
//     windows overlap in all but one sample, so the previous window's basis
//     is an excellent starting guess and two or three iterations suffice
//     (Idé & Tsuda's "feedback" mechanism); a cold start simply iterates
//     longer;
//   * each φᵢ is read off a k-step Lanczos run on the past operator seeded
//     at βᵢ: in the Krylov basis the seed is e₁, so
//     φᵢ ≈ 1 − Σ_{j≤eta} x_j[0]²  (Eq. 13)
//     with x_j the leading eigenvectors of the k×k tridiagonal T_k,
//     extracted by the QL iteration; k = 2·eta or 2·eta−1 (Eq. 14).
//
// The warm start makes the scorer stateful: feeding it consecutive sliding
// windows (the only access pattern in FUNNEL) is both fastest and most
// accurate. Non-consecutive windows are still correct — the iteration
// re-converges — just marginally slower.
#pragma once

#include <cstdint>

#include "detect/scorer.h"
#include "detect/sst_common.h"
#include "linalg/matrix.h"

namespace funnel::detect {

struct IkaParams {
  /// Power-iteration sweeps on a cold start (no previous basis).
  int cold_iterations = 30;
  /// Sweeps when warm-started from the previous window's basis.
  int warm_iterations = 3;
  /// Fast path: also persist the *past* eigen-subspace across windows and
  /// read each φᵢ as a projection onto it, instead of running a fresh
  /// k-step Lanczos per future direction per window. Approximates the same
  /// Eq. 13 quantity; fidelity vs exact SVD is guarded by
  /// detect_sst_fidelity_test (corr ≥ 0.92). Off by default — the default
  /// path stays bit-identical to the original scorer.
  bool warm_past = false;
  /// Deterministic cold-restart policy for the fast path: every
  /// `restart_period` scored windows both warm bases are rebuilt from
  /// scratch, so accumulated drift cannot compound and a run's scores are a
  /// pure function of (series, params) regardless of where timing noise
  /// lands. Ignored when warm_past is false.
  int restart_period = 64;
  /// Fast path, warm windows only: after the warm sweeps, the Ritz residual
  /// ||C·B − B·diag(λ)||_F is checked against `warm_residual_tol · λ₁`;
  /// when the warm basis failed to track the subspace (sharp dynamics
  /// change, near-degenerate spectrum), the window escalates to a full cold
  /// re-seed + cold_iterations — bit-identical to what a cold restart would
  /// compute. This bounds warm-start drift per window by construction
  /// (locked down by detect_sst_warmstart_test's differential suite).
  double warm_residual_tol = 0.02;
};

class IkaSst final : public ChangeScorer {
 public:
  explicit IkaSst(SstGeometry geometry = {}, IkaParams params = {});

  std::size_t window_size() const override { return geo_.window(); }
  std::size_t change_offset() const override { return geo_.half(); }
  double score(std::span<const double> window) override;
  const char* name() const override { return "funnel-ika-sst"; }

  const SstGeometry& geometry() const { return geo_; }
  const IkaParams& params() const { return params_; }

  /// Drop ALL warm-start state (both bases, warm flags, and the restart
  /// counter) — e.g. when retargeting the scorer to a different KPI stream,
  /// or when a ThreadPool slot reuses the scorer for the next metric. After
  /// reset() the scorer is *scoring-state* equivalent to a freshly
  /// constructed one: every subsequent score is byte-identical to a fresh
  /// scorer's. The lifetime telemetry counters below deliberately survive —
  /// they describe the scorer object, not the stream, and the per-slot
  /// assessor scorers would lose their totals on every KPI otherwise.
  void reset() {
    warm_ = false;
    past_warm_ = false;
    windows_since_restart_ = 0;
    future_basis_ = linalg::Matrix();
    past_basis_ = linalg::Matrix();
  }

  /// Lifetime count of deterministic cold restarts taken by the fast path
  /// (the restart_period policy firing; excludes the initial cold start of
  /// each stream). Never reset; diff around a run to attribute.
  std::uint64_t cold_restarts() const { return cold_restarts_; }
  /// Lifetime count of warm windows escalated to a full cold re-seed by the
  /// Ritz-residual check (future + past subspaces both count). Never reset.
  std::uint64_t escalations() const { return escalations_; }

 private:
  SstGeometry geo_;
  IkaParams params_;
  linalg::Matrix future_basis_;  ///< omega x eta, persisted across windows
  linalg::Matrix past_basis_;    ///< omega x eta, fast path only
  bool warm_ = false;
  bool past_warm_ = false;
  int windows_since_restart_ = 0;
  std::uint64_t cold_restarts_ = 0;  ///< lifetime telemetry, survives reset()
  std::uint64_t escalations_ = 0;    ///< lifetime telemetry, survives reset()
};

}  // namespace funnel::detect
