// Console table rendering for the benchmark harness.
//
// Every bench binary prints its paper table/figure with this printer so the
// output format is uniform and diffable (EXPERIMENTS.md records the output).
#pragma once

#include <string>
#include <vector>

namespace funnel {

/// A simple left/right aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Render with column padding and a header separator.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace funnel
