// Metric identity.
//
// The paper monitors three kinds of KPIs (§2.2): server KPIs (CPU context
// switch count, memory utilization, NIC throughput...), instance KPIs (page
// view count, response delay...) and service KPIs (aggregations of instance
// KPIs). A MetricId names one KPI of one entity; the MetricStore keys its
// series by it.
#pragma once

#include <compare>
#include <string>

namespace funnel::tsdb {

/// The kind of entity a KPI belongs to.
enum class EntityKind { kServer, kInstance, kService };

const char* to_string(EntityKind kind);

/// Statistical class of a KPI (§4.2.1 splits all evaluation items into
/// these three types).
enum class KpiClass { kSeasonal, kStationary, kVariable };

const char* to_string(KpiClass c);

/// Identity of one KPI time series: (entity kind, entity name, KPI name).
struct MetricId {
  EntityKind kind = EntityKind::kServer;
  std::string entity;
  std::string kpi;

  auto operator<=>(const MetricId&) const = default;

  /// "server:web-042/cpu_context_switch" style rendering.
  std::string to_string() const;
};

/// Convenience constructors.
MetricId server_metric(std::string server, std::string kpi);
MetricId instance_metric(std::string instance, std::string kpi);
MetricId service_metric(std::string service, std::string kpi);

}  // namespace funnel::tsdb
