#include "funnel/verdict_journal.h"

namespace funnel::core {

obs::JournalEvent journal_event(const changes::SoftwareChange& change,
                                const ItemVerdict& verdict,
                                std::string_view source) {
  obs::JournalEvent e;
  e.source = std::string(source);

  e.change_id = change.id;
  e.change_time = change.time;
  e.service = change.service;
  e.change_type = changes::to_string(change.type);
  e.launch_mode = changes::to_string(change.mode);

  e.metric = verdict.metric.to_string();
  e.entity_kind = tsdb::to_string(verdict.metric.kind);
  e.kpi = verdict.metric.kpi;

  e.cause = to_string(verdict.cause);
  if (verdict.cause == Cause::kInconclusive) {
    e.inconclusive_reason = to_string(verdict.inconclusive_reason);
  }
  e.detected = verdict.kpi_change_detected;

  if (verdict.alarm) {
    e.alarm_minute = verdict.alarm->minute;
    e.sst_peak = verdict.alarm->peak_score;
  }

  if (verdict.did_fit) {
    e.did_alpha = verdict.did_fit->alpha;
    e.did_alpha_scaled = verdict.did_fit->alpha_scaled;
    e.did_t_stat = verdict.did_fit->t_stat;
    e.did_n_treated = static_cast<std::int64_t>(verdict.did_fit->n_treated);
    e.did_n_control = static_cast<std::int64_t>(verdict.did_fit->n_control);
    e.control_kind = verdict.used_historical_control ? "seasonal-window"
                                                     : "dark-launch-siblings";
  }
  e.fallback_control = verdict.used_fallback_control;

  if (verdict.quality) {
    e.coverage = verdict.quality->coverage;
    e.window_minutes =
        static_cast<std::int64_t>(verdict.quality->window_minutes);
    e.clean_samples =
        static_cast<std::int64_t>(verdict.quality->clean_samples);
    e.longest_gap_run =
        static_cast<std::int64_t>(verdict.quality->longest_gap_run);
    e.longest_flat_run =
        static_cast<std::int64_t>(verdict.quality->longest_flat_run);
  }

  if (verdict.determined_at) {
    e.determined_at = *verdict.determined_at;
    e.time_to_verdict = verdict.time_to_verdict(change.time);
  }

  return e;
}

}  // namespace funnel::core
