// JSON export of assessment reports — the integration surface for paging
// and ticketing systems (the "deliver to OP" arrow of Fig. 3 step 12).
#pragma once

#include <string>

#include "funnel/config.h"
#include "funnel/report.h"
#include "obs/trace.h"

namespace funnel::core {

/// Render one verdict as a JSON object.
std::string to_json(const ItemVerdict& verdict);

/// Render the full report as a JSON object (stable key order, no external
/// dependency).
std::string to_json(const AssessmentReport& report);

/// to_json(report) plus a trailing "explain" array: one entry per alarmed
/// KPI spelling out the decision provenance — the SST evidence (peak score
/// against the configured threshold/persistence and the ω/η/k geometry that
/// produced it), the DiD evidence (α, scaled α, t-stat and group sizes
/// against their thresholds), which control group the verdict rests on
/// ("dark-launch-siblings" vs "seasonal-window"), and a one-line decision
/// rationale. When `trace` is a dump collected from the assessment's
/// tracer, the per-KPI spans contribute the raw (pre-damping) SST score and
/// the Eq. 11 damping factor, which the report alone cannot reconstruct.
/// The base-report prefix is byte-identical to to_json(report).
///
/// `triage_json`, when non-null, is spliced verbatim as a trailing
/// "triage" key — the change's standing in a triage report built from the
/// run's verdict journal (triage::change_summary_json). A raw pre-rendered
/// fragment keeps core free of a dependency on src/triage, which sits
/// above it in the library graph.
std::string to_json_explained(const AssessmentReport& report,
                              const FunnelConfig& config,
                              const obs::TraceDump* trace = nullptr,
                              const std::string* triage_json = nullptr);

}  // namespace funnel::core
