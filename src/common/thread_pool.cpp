#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "obs/trace.h"

namespace funnel {
namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Thread-locals rather than a map: a thread belongs to at most one pool.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

/// One parallel_for invocation. Lives on the heap (shared_ptr) because
/// runner tasks may still be dequeued after the batch has completed and the
/// initiating frame has returned; they find next_ >= end and exit without
/// touching the (by then dangling) body.
struct ThreadPool::ForBatch {
  std::atomic<std::size_t> next{0};  ///< next unclaimed index
  std::size_t end = 0;
  std::size_t total = 0;  ///< indices in the batch
  const ForBody* body = nullptr;
  /// Initiator's ambient trace context, re-installed around every body so
  /// spans opened inside a task attach under the caller's span even on a
  /// worker thread (obs/trace.h). Empty when no span was open.
  obs::SpanContext trace_ctx{};

  std::atomic<std::size_t> done{0};  ///< completed indices
  std::mutex mutex;                  ///< guards error + completion wait
  std::condition_variable finished;
  std::exception_ptr error;  ///< first exception thrown by a body
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve_threads(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::this_slot() const {
  return tls_pool == this ? tls_worker : size();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::set_stats(const obs::Registry* stats) {
  stats_.store(stats, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->set("pool.workers", static_cast<double>(size()));
    stats->declare_counter("pool.tasks_executed");
    stats->declare_counter("pool.busy_us");
    stats->declare_counter("pool.idle_us");
    stats->declare_histogram("pool.queue_wait_us");
    stats->declare_histogram("pool.task_run_us");
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  FUNNEL_REQUIRE(static_cast<bool>(task), "thread pool task must be callable");
  QueuedTask queued{std::move(task), {}};
  if (stats_.load(std::memory_order_relaxed) != nullptr) {
    queued.enqueued = std::chrono::steady_clock::now();
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FUNNEL_REQUIRE(!stop_, "thread pool is shutting down");
    queue_.push_back(std::move(queued));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tls_pool = this;
  tls_worker = worker_index;
  for (;;) {
    QueuedTask task;
    const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
    const auto idle_start =
        stats != nullptr ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Re-read: telemetry may have been attached while this worker slept.
    stats = stats_.load(std::memory_order_relaxed);
    if (stats == nullptr) {
      task.fn();
      continue;
    }
    const auto run_start = std::chrono::steady_clock::now();
    const auto micros = [](auto d) {
      return std::chrono::duration<double, std::micro>(d).count();
    };
    if (idle_start.time_since_epoch().count() != 0) {
      stats->add("pool.idle_us",
                 static_cast<std::uint64_t>(micros(run_start - idle_start)));
    }
    if (task.enqueued.time_since_epoch().count() != 0) {
      stats->observe("pool.queue_wait_us", micros(run_start - task.enqueued));
    }
    task.fn();
    const auto run_us = micros(std::chrono::steady_clock::now() - run_start);
    stats->observe("pool.task_run_us", run_us);
    stats->add("pool.busy_us", static_cast<std::uint64_t>(run_us));
    stats->add("pool.tasks_executed");
  }
}

void ThreadPool::run_batch(const std::shared_ptr<ForBatch>& batch) const {
  const std::size_t slot = this_slot();
  const obs::ScopedContext trace_ctx(batch->trace_ctx);
  for (;;) {
    const std::size_t i =
        batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->end) return;
    try {
      (*batch->body)(i, slot);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(batch->mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->total) {
      // Completing thread takes the lock before notifying so the initiator
      // cannot miss the wake-up between its predicate check and wait.
      const std::lock_guard<std::mutex> lock(batch->mutex);
      batch->finished.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const ForBody& body) {
  if (end <= begin) return;
  const std::size_t total = end - begin;

  auto batch = std::make_shared<ForBatch>();
  batch->next.store(begin, std::memory_order_relaxed);
  batch->end = end;
  batch->total = total;
  batch->body = &body;
  batch->trace_ctx = obs::current_context();

  // One runner per worker (capped at the batch size): each loops claiming
  // indices until the range is exhausted. The caller is runner number
  // size()+1 — it drains too, so progress never depends on a free worker.
  const std::size_t runners = std::min(size(), total);
  for (std::size_t r = 0; r < runners; ++r) {
    enqueue([this, batch] { run_batch(batch); });
  }
  run_batch(batch);

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->finished.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == total;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace funnel
