#include "tsdb/persist/segment.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace funnel::tsdb::persist {

namespace {

constexpr char kMagic[8] = {'F', 'N', 'L', 'S', 'E', 'G', '1', '\0'};
constexpr std::size_t kHeaderSize = 16;  // magic + epoch
// footer_off u64 | footer_len u32 | footer crc u32 | magic
constexpr std::size_t kTrailerSize = 24;

std::uint64_t load_le64(const unsigned char* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t raw;
    std::memcpy(&raw, p, 8);
    return raw;
  } else {
    std::uint64_t raw = 0;
    for (int i = 0; i < 8; ++i) {
      raw |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return raw;
  }
}

void fwrite_or_throw(const void* data, std::size_t size, std::FILE* f,
                     const std::string& path) {
  if (size != 0 && std::fwrite(data, 1, size, f) != size) {
    std::fclose(f);
    throw StorageError("segment write failed: " + path);
  }
}

}  // namespace

std::uint64_t write_segment(const std::string& path, std::uint64_t epoch,
                            std::span<const SegmentColumn> columns) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw StorageError("cannot create segment: " + tmp);

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u64(header, epoch);
  fwrite_or_throw(header.data(), header.size(), f, tmp);

  // Stream the columns, recording each one's offsets for the footer. The
  // on-disk ints are LE, so the columns are re-encoded through the codec
  // rather than fwritten raw — one transient buffer per column.
  std::uint64_t off = kHeaderSize;
  std::string footer;
  std::string col;
  for (const SegmentColumn& c : columns) {
    col.clear();
    col.reserve(c.minutes.size() * 16);
    for (MinuteTime m : c.minutes) put_i64(col, m);
    for (double v : c.values) put_f64(col, v);

    put_u8(footer, static_cast<std::uint8_t>(c.metric.kind));
    put_str(footer, c.metric.entity);
    put_str(footer, c.metric.kpi);
    put_i64(footer, c.lo);
    put_i64(footer, c.hi);
    put_u64(footer, c.minutes.size());
    put_u64(footer, off);                         // minutes_off
    put_u64(footer, off + c.minutes.size() * 8);  // values_off

    fwrite_or_throw(col.data(), col.size(), f, tmp);
    off += col.size();
  }

  std::string trailer;
  put_u64(trailer, off);  // footer_off
  put_u32(trailer, static_cast<std::uint32_t>(footer.size()));
  put_u32(trailer, crc32c(footer));
  trailer.append(kMagic, sizeof(kMagic));
  fwrite_or_throw(footer.data(), footer.size(), f, tmp);
  fwrite_or_throw(trailer.data(), trailer.size(), f, tmp);

  std::fflush(f);
#ifdef __unix__
  ::fsync(::fileno(f));
#endif
  std::fclose(f);

  // Atomic publish: a crash before the rename leaves only a .tmp stray,
  // which recovery deletes; a crash after leaves a complete, valid file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw StorageError("cannot publish segment: " + path);
  return off + footer.size() + kTrailerSize;
}

SegmentReader::SegmentReader(std::string path) : path_(std::move(path)) {
#ifndef __unix__
  throw StorageError("segment mmap unsupported on this platform");
#else
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) throw StorageError("cannot open segment: " + path_);
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) < kHeaderSize + kTrailerSize) {
    ::close(fd);
    throw StorageError("segment too small: " + path_);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) throw StorageError("cannot mmap segment: " + path_);
  map_ = static_cast<const unsigned char*>(map);

  const auto corrupt = [&](const char* why) -> StorageError {
    ::munmap(const_cast<unsigned char*>(map_), size_);
    map_ = nullptr;
    return StorageError(std::string("corrupt segment (") + why + "): " +
                        path_);
  };

  if (std::memcmp(map_, kMagic, sizeof(kMagic)) != 0 ||
      std::memcmp(map_ + size_ - sizeof(kMagic), kMagic, sizeof(kMagic)) !=
          0) {
    throw corrupt("bad magic");
  }
  {
    ByteReader hdr(reinterpret_cast<const char*>(map_) + sizeof(kMagic), 8);
    epoch_ = hdr.get_u64();
  }
  ByteReader tr(reinterpret_cast<const char*>(map_) + size_ - kTrailerSize,
                kTrailerSize - sizeof(kMagic));
  const std::uint64_t footer_off = tr.get_u64();
  const std::uint32_t footer_len = tr.get_u32();
  const std::uint32_t footer_crc = tr.get_u32();
  if (footer_off < kHeaderSize || footer_off + footer_len + kTrailerSize !=
                                      size_) {
    throw corrupt("bad footer bounds");
  }
  const char* footer = reinterpret_cast<const char*>(map_) + footer_off;
  if (crc32c(static_cast<const void*>(footer), footer_len) != footer_crc) {
    throw corrupt("footer crc");
  }

  ByteReader r(footer, footer_len);
  while (r.ok() && r.remaining() > 0) {
    Entry e;
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(EntityKind::kService)) r.fail();
    e.metric.kind = static_cast<EntityKind>(kind);
    e.metric.entity = r.get_str();
    e.metric.kpi = r.get_str();
    e.lo = r.get_i64();
    e.hi = r.get_i64();
    e.count = r.get_u64();
    e.minutes_off = r.get_u64();
    e.values_off = r.get_u64();
    if (!r.ok()) break;
    // Columns must lie inside the data region, before the footer.
    if (e.minutes_off + e.count * 8 > footer_off ||
        e.values_off + e.count * 8 > footer_off || e.lo > e.hi) {
      r.fail();
      break;
    }
    entries_.push_back(std::move(e));
  }
  if (!r.ok()) throw corrupt("footer entries");
#endif
}

SegmentReader::~SegmentReader() {
#ifdef __unix__
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), size_);
  }
#endif
}

const SegmentReader::Entry* SegmentReader::find(const MetricId& metric) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), metric,
      [](const Entry& e, const MetricId& id) { return e.metric < id; });
  if (it == entries_.end() || it->metric != metric) return nullptr;
  return &*it;
}

MinuteTime SegmentReader::minute(const Entry& e, std::uint64_t i) const {
  return static_cast<MinuteTime>(load_le64(map_ + e.minutes_off + i * 8));
}

double SegmentReader::value(const Entry& e, std::uint64_t i) const {
  return std::bit_cast<double>(load_le64(map_ + e.values_off + i * 8));
}

void SegmentReader::read_into(const Entry& e, MinuteTime t0, MinuteTime t1,
                              std::span<double> out) const {
  // Binary search for the first stored minute >= t0, then walk forward.
  std::uint64_t lo = 0, hi = e.count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (minute(e, mid) < t0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::uint64_t i = lo; i < e.count; ++i) {
    const MinuteTime m = minute(e, i);
    if (m >= t1) break;
    out[static_cast<std::size_t>(m - t0)] = value(e, i);
  }
}

std::vector<SegmentColumn> merge_segments(
    std::span<const SegmentReader* const> readers) {
  // Per metric: the union range across all segments and the list of entries
  // in ascending epoch order (the readers' order).
  struct Pending {
    MinuteTime lo = 0;
    MinuteTime hi = 0;
    std::vector<std::pair<const SegmentReader*, const SegmentReader::Entry*>>
        parts;
  };
  std::map<MetricId, Pending> by_metric;
  for (const SegmentReader* reader : readers) {
    for (const auto& e : reader->entries()) {
      auto [it, fresh] = by_metric.try_emplace(e.metric);
      if (fresh) {
        it->second.lo = e.lo;
        it->second.hi = e.hi;
      } else {
        it->second.lo = std::min(it->second.lo, e.lo);
        it->second.hi = std::max(it->second.hi, e.hi);
      }
      it->second.parts.emplace_back(reader, &e);
    }
  }

  std::vector<SegmentColumn> merged;
  merged.reserve(by_metric.size());
  std::vector<double> dense;
  for (auto& [metric, pending] : by_metric) {
    SegmentColumn col;
    col.metric = metric;
    col.lo = pending.lo;
    col.hi = pending.hi;
    const auto span = static_cast<std::size_t>(pending.hi - pending.lo);
    dense.assign(span, std::numeric_limits<double>::quiet_NaN());
    // Ascending epoch overlay: the newest finite value for a minute wins.
    // (Upstream ingest is first-write-wins, so overlapping segments never
    // actually disagree on a finite value — the overlay just de-overlaps.)
    for (const auto& [reader, entry] : pending.parts) {
      reader->read_into(*entry, pending.lo, pending.hi, dense);
    }
    for (std::size_t i = 0; i < span; ++i) {
      if (!std::isnan(dense[i])) {
        col.minutes.push_back(pending.lo + static_cast<MinuteTime>(i));
        col.values.push_back(dense[i]);
      }
    }
    merged.push_back(std::move(col));
  }
  return merged;
}

}  // namespace funnel::tsdb::persist
