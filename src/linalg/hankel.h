// Hankel (trajectory) matrices over sliding KPI windows.
//
// SST compares the dynamics before and after a candidate change point by
// embedding the raw series into Hankel matrices (Eq. 1 and 3):
//   B(t) = [q(t-δ), ..., q(t-1)],  q(t) = [x(t-ω+1), ..., x(t)]ᵀ
// Both the past matrix B and the future matrix A are built by `hankel` from
// the corresponding window slice. The Gram operator C = B·Bᵀ is applied
// implicitly (never materialized) — the paper's "matrix compression and
// implicit inner product calculation".
#pragma once

#include <span>

#include "linalg/lanczos.h"
#include "linalg/matrix.h"

namespace funnel::linalg {

/// Build an omega x count Hankel matrix whose column j is
/// window[j .. j+omega-1]. The window must contain exactly
/// omega + count - 1 samples.
Matrix hankel(std::span<const double> window, std::size_t omega,
              std::size_t count);

/// Number of raw samples a Hankel embedding of `count` lagged windows of
/// size `omega` consumes.
constexpr std::size_t hankel_span(std::size_t omega, std::size_t count) {
  return omega + count - 1;
}

/// Implicit Gram operator y = B·(Bᵀ·x) for a Hankel matrix B defined by a
/// raw window, computed directly from the samples without forming B or
/// B·Bᵀ. Cost per apply is O(omega * count) multiply-adds.
///
/// The window is copied (it is at most a few dozen samples), so the operator
/// remains valid after the source buffer changes — important for the online
/// sliding-window detector.
class HankelGramOperator final : public LinearOperator {
 public:
  HankelGramOperator(std::span<const double> window, std::size_t omega,
                     std::size_t count);

  std::size_t dim() const override { return omega_; }
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Y = C X for a block of `cols` vectors stored row-major
  /// (x[i * cols + b] = X(i, b), i < dim()), one strided pass over the
  /// window samples for the whole block. The inner loops run unit-stride
  /// over the block columns, which is what makes the pass SIMD-friendly;
  /// each accumulator still sums the same products in the same order as a
  /// column-at-a-time apply(), so the result is bit-identical to the scalar
  /// reference path (asserted by linalg_lanczos_test). `scratch` must hold
  /// at least count() * cols doubles and is fully overwritten.
  void apply_block(std::span<const double> x, std::span<double> y,
                   std::size_t cols, std::span<double> scratch) const;

  /// Reference implementation of apply_block: column-at-a-time apply().
  /// Compile with -DFUNNEL_SST_SCALAR_KERNELS to dispatch apply_block to
  /// this path everywhere (bit-identical either way; the macro exists so
  /// the batched kernel can be excluded when chasing a miscompilation).
  void apply_block_reference(std::span<const double> x, std::span<double> y,
                             std::size_t cols) const;

  std::size_t count() const { return count_; }

 private:
  std::size_t omega_;
  std::size_t count_;
  Vector window_;
};

/// K independent Hankel Gram operators applied in lockstep: operator k is
/// defined by windows[k * span .. (k+1) * span) and is applied to its own
/// block of `cols` vectors. Storage is KPI-interleaved (sample-major):
/// windows[i * kpis + k] is sample i of KPI k, x[(i * cols + b) * kpis + k]
/// is X_k(i, b) — so the innermost loop of the combined pass runs
/// unit-stride across the KPI lane, turning K tiny mat-vecs into one
/// cache-friendly strided sweep. Bit-identical to applying each operator
/// separately (same per-accumulator summation order).
class BatchHankelGram {
 public:
  /// `windows` holds kpis * hankel_span(omega, count) samples, interleaved
  /// as described above.
  BatchHankelGram(std::span<const double> windows, std::size_t kpis,
                  std::size_t omega, std::size_t count);

  std::size_t kpis() const { return kpis_; }
  std::size_t dim() const { return omega_; }

  /// y[(i * cols + b) * kpis + k] = (C_k X_k)(i, b) for every KPI lane k.
  /// `scratch` must hold at least count * cols * kpis doubles.
  void apply_block(std::span<const double> x, std::span<double> y,
                   std::size_t cols, std::span<double> scratch) const;

 private:
  std::size_t kpis_;
  std::size_t omega_;
  std::size_t count_;
  Vector windows_;  ///< interleaved copy
};

}  // namespace funnel::linalg
