// Treated/control group construction for the two DiD paths.
//
// Dark-Launching path (§3.2.4): treated = KPIs of tservers/tinstances,
// control = same-service cservers/cinstances; each KPI contributes its mean
// over the pre-change window (t = 0) and the post-change window (t = 1),
// both of length omega.
//
// Full-Launching / affected-service path (§3.2.5): no control entities
// exist, so the control group is the same minute-of-day window on each of
// the previous `baseline_days` days (30 in the paper — long enough to ride
// out baseline contamination), one pre/post pair per historical day.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "did/did.h"
#include "tsdb/store.h"

namespace funnel::did {

/// Per-KPI period means for one group.
struct GroupMeans {
  std::vector<double> pre;   ///< element k: KPI k's mean over [change-w, change)
  std::vector<double> post;  ///< element k: KPI k's mean over [change, change+w)
  /// Robust sigma of the pooled per-minute pre-period samples — the group's
  /// intrinsic noise, used to express alpha in noise units.
  double pooled_scale = 0.0;
};

/// Mean of the clean samples of `series` over [t0, t1); returns nullopt when
/// the range is not covered or every sample is NaN.
std::optional<double> window_mean(const tsdb::TimeSeries& series,
                                  MinuteTime t0, MinuteTime t1);

/// Pre/post means for each metric around `change_time` with window `omega`.
/// Metrics missing from the store or without clean coverage are skipped.
GroupMeans collect_group(const tsdb::MetricStore& store,
                         std::span<const tsdb::MetricId> metrics,
                         MinuteTime change_time, std::size_t omega);

/// Historical control group for one KPI: for each of the `baseline_days`
/// days before the change day, the means over the same minute-of-day pre and
/// post windows. Days without clean coverage are skipped.
GroupMeans collect_historical_control(const tsdb::TimeSeries& series,
                                      MinuteTime change_time,
                                      std::size_t omega, int baseline_days);

/// Why a DiD fit could not be produced. Dirty telemetry makes every one of
/// these reachable in production (agent restarts, late deploys of new
/// KPIs), so they are statuses the assessor maps to Cause::kInconclusive —
/// not exceptions (see docs/ROBUSTNESS.md).
enum class DiDStatus {
  kOk,
  kEmptyTreatedGroup,  ///< no treated KPI had clean pre+post windows
  kEmptyControlGroup,  ///< no control KPI had clean pre+post windows
  kNoPreWindow,        ///< treated KPI lacks a usable pre-change window
  kNoPostWindow,       ///< treated KPI lacks a usable post-change window
  kQuorumUnmet,        ///< fewer clean baseline days than the quorum
};

const char* to_string(DiDStatus s);

/// A DiD attempt: the fit when status == kOk, otherwise why there is none.
struct DiDOutcome {
  DiDStatus status = DiDStatus::kOk;
  DiDResult fit{};              ///< meaningful only when ok()
  std::size_t clean_days = 0;   ///< historical path: clean baseline days
  bool ok() const { return status == DiDStatus::kOk; }
};

/// DiD fit for the Dark-Launching path. An empty treated or control group
/// (e.g. every sibling gapped over the comparison windows) is reported via
/// the status, never thrown.
DiDOutcome did_dark_launch(const tsdb::MetricStore& store,
                           std::span<const tsdb::MetricId> treated,
                           std::span<const tsdb::MetricId> control,
                           MinuteTime change_time, std::size_t omega);

/// DiD fit for the seasonality-exclusion path: one KPI against its own
/// 30-day history. At least `quorum` (>= 1) clean baseline days must
/// contribute, otherwise the fit would rest on a sample too small to mean
/// anything and kQuorumUnmet is returned instead.
DiDOutcome did_historical(const tsdb::TimeSeries& series,
                          MinuteTime change_time, std::size_t omega,
                          int baseline_days, int quorum = 1);

}  // namespace funnel::did
