#include "obs/server.h"

#ifndef FUNNEL_OBS_OFF

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace funnel::obs {
namespace {

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return status < 400 ? "OK" : "Error";
  }
}

// Loop until every byte is out (or the peer is gone). MSG_NOSIGNAL: a
// scraper hanging up mid-response must not SIGPIPE the pipeline.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& resp, bool head_only) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_reason(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size());
  for (const auto& [name, value] : resp.headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  write_all(fd, head.data(), head.size());
  if (!head_only) write_all(fd, resp.body.data(), resp.body.size());
}

/// Read until the blank line ending the request head, a size/time bound, or
/// EOF. Returns false on overflow/timeout/error (head may be partial). On
/// success `*head_end` is the offset just past "\r\n\r\n"; bytes beyond it
/// (the body's first chunk, arriving in the same packets) stay in `*buf`.
/// The head bound applies to the head alone, never to those body bytes.
bool read_request_head(int fd, std::size_t max_bytes, std::string* buf,
                       std::size_t* head_end) {
  char tmp[2048];
  for (;;) {
    const std::size_t pos = buf->find("\r\n\r\n");
    if (pos != std::string::npos) {
      *head_end = pos + 4;
      return *head_end <= max_bytes;
    }
    if (buf->size() > max_bytes) return false;
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_RCVTIMEO: slowloris timeout
    }
    if (n == 0) return false;
    buf->append(tmp, static_cast<std::size_t>(n));
  }
}

/// Scan the head's header lines for Content-Length (case-insensitive name,
/// as HTTP requires). Returns false on a malformed value (answer 400);
/// `*length` stays untouched when the header is absent.
bool parse_content_length(const std::string& buf, std::size_t head_end,
                          std::optional<std::size_t>* length) {
  std::size_t line = buf.find("\r\n") + 2;  // skip the request line
  while (line + 2 <= head_end) {
    std::size_t eol = buf.find("\r\n", line);
    if (eol == std::string::npos || eol >= head_end) break;
    std::size_t colon = buf.find(':', line);
    if (colon != std::string::npos && colon < eol) {
      std::string name = buf.substr(line, colon - line);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-length") {
        std::size_t v = colon + 1;
        while (v < eol && (buf[v] == ' ' || buf[v] == '\t')) ++v;
        std::size_t end = eol;
        while (end > v && (buf[end - 1] == ' ' || buf[end - 1] == '\t')) --end;
        if (end == v) return false;
        std::size_t value = 0;
        for (std::size_t i = v; i < end; ++i) {
          if (buf[i] < '0' || buf[i] > '9') return false;
          if (value > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
            return false;
          }
          value = value * 10 + static_cast<std::size_t>(buf[i] - '0');
        }
        *length = value;
      }
    }
    line = eol + 2;
  }
  return true;
}

/// Read the remainder of a Content-Length body (its first chunk may already
/// sit in `*body`). False on timeout/EOF before `length` bytes arrived.
bool read_request_body(int fd, std::size_t length, std::string* body) {
  char tmp[4096];
  while (body->size() < length) {
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    body->append(tmp, static_cast<std::size_t>(n));
  }
  body->resize(length);  // ignore pipelined bytes beyond the declared body
  return true;
}

/// Parse "METHOD SP target SP HTTP/1.x" out of the head's first line.
bool parse_request_line(const std::string& head, HttpRequest* req) {
  std::size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  std::string line = head.substr(0, eol);
  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  req->method = line.substr(0, sp1);
  req->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::size_t q = req->target.find('?');
  req->path = req->target.substr(0, q);
  req->query = q == std::string::npos ? "" : req->target.substr(q + 1);
  return !req->path.empty() && req->path[0] == '/';
}

}  // namespace

struct HttpServer::Impl {
  explicit Impl(HttpServerOptions o) : options(std::move(o)) {
    if (options.num_workers == 0) options.num_workers = 1;
    if (options.queue_capacity == 0) options.queue_capacity = 1;
  }

  HttpServerOptions options;
  /// Exact-path routes: independent GET/HEAD and POST slots, so a POST to a
  /// GET-only path is a clean 405 (and vice versa).
  struct Route {
    Handler get;
    Handler post;
  };
  std::unordered_map<std::string, Route> routes;
  /// Prefix routes (e.g. "/v1/ingest/<tenant>"), longest match wins.
  struct PrefixRoute {
    std::string prefix;
    Handler handler;
    bool post = false;
  };
  std::vector<PrefixRoute> prefix_routes;

  int listen_fd = -1;
  std::atomic<std::uint16_t> bound_port{0};
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};
  std::thread accept_thread;
  std::vector<std::thread> workers;

  std::mutex mutex;                ///< guards pending
  std::condition_variable cv;
  std::deque<int> pending;         ///< accepted fds awaiting a worker

  std::atomic<std::uint64_t> requests{0};
  std::atomic<const Registry*> stats{nullptr};

  void account(int status, double micros) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (const Registry* reg = stats.load(std::memory_order_acquire)) {
      reg->add("obs.server.requests");
      if (status >= 400) reg->add("obs.server.http_errors");
      reg->observe("obs.server.request_us", micros);
    }
  }

  /// Route lookup: exact path first (405 on a method mismatch), then the
  /// longest matching prefix of the right method. `*path_known` reports
  /// whether any route — either method — covers the path.
  const Handler* find_handler(const std::string& path, bool is_post,
                              bool* path_known) const {
    auto it = routes.find(path);
    if (it != routes.end()) {
      *path_known = true;
      const Handler& h = is_post ? it->second.post : it->second.get;
      if (h) return &h;
    }
    const Handler* best = nullptr;
    std::size_t best_len = 0;
    for (const PrefixRoute& pr : prefix_routes) {
      if (path.rfind(pr.prefix, 0) != 0) continue;
      *path_known = true;
      if (pr.post != is_post) continue;
      if (best == nullptr || pr.prefix.size() > best_len) {
        best = &pr.handler;
        best_len = pr.prefix.size();
      }
    }
    return best;
  }

  void serve_connection(int fd) {
    // Bound the read side so a half-open scraper can't pin a worker.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    auto t0 = std::chrono::steady_clock::now();
    std::string buf;
    std::size_t head_end = 0;
    HttpRequest req;
    HttpResponse resp;
    bool head_only = false;
    bool parsed = false;
    const Handler* handler = nullptr;
    if (!read_request_head(fd, options.max_request_bytes, &buf, &head_end) ||
        !parse_request_line(buf, &req)) {
      if (buf.empty()) {  // peer connected and hung up: not a request
        ::close(fd);
        return;
      }
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (req.method != "GET" && req.method != "HEAD" &&
               req.method != "POST") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      head_only = req.method == "HEAD";
      // Route before body: 404/405 never depend on (or wait for) a
      // payload, so POSTing to a GET-only path is a clean 405 even with
      // no Content-Length.
      bool path_known = false;
      handler = find_handler(req.path, req.method == "POST", &path_known);
      if (handler == nullptr) {
        resp = path_known
                   ? HttpResponse{405, "text/plain; charset=utf-8",
                                  "method not allowed\n"}
                   : HttpResponse{404, "text/plain; charset=utf-8",
                                  "not found\n"};
      } else {
        // Body: Content-Length-bounded. 411 on a POST that declares none,
        // 413 past max_body_bytes (the payload is never read), 400 on a
        // malformed length or a body cut short.
        std::optional<std::size_t> content_length;
        if (!parse_content_length(buf, head_end, &content_length)) {
          resp = {400, "text/plain; charset=utf-8", "bad content-length\n"};
        } else if (req.method == "POST" && !content_length.has_value()) {
          resp = {411, "text/plain; charset=utf-8", "length required\n"};
        } else if (content_length.value_or(0) > options.max_body_bytes) {
          resp = {413, "text/plain; charset=utf-8", "payload too large\n"};
        } else {
          req.body = buf.substr(head_end);
          if (!read_request_body(fd, content_length.value_or(0), &req.body)) {
            resp = {400, "text/plain; charset=utf-8", "incomplete body\n"};
          } else {
            parsed = true;
          }
        }
      }
    }
    if (parsed) {
      try {
        resp = (*handler)(req);
      } catch (const std::exception& e) {
        resp = {500, "text/plain; charset=utf-8",
                std::string("handler error: ") + e.what() + "\n"};
      } catch (...) {
        resp = {500, "text/plain; charset=utf-8", "handler error\n"};
      }
    }
    write_response(fd, resp, head_only);
    ::close(fd);
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    account(resp.status, micros);
  }

  void worker_loop() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) || !pending.empty();
        });
        if (stopping.load(std::memory_order_relaxed)) return;
        fd = pending.front();
        pending.pop_front();
      }
      serve_connection(fd);
    }
  }

  void accept_loop() {
    pollfd pfd{listen_fd, POLLIN, 0};
    while (!stopping.load(std::memory_order_relaxed)) {
      // Finite poll so stop() never waits on a quiet socket.
      int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;  // timeout or EINTR
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      bool shed = false;
      {
        std::lock_guard lock(mutex);
        if (pending.size() >= options.queue_capacity) {
          shed = true;
        } else {
          pending.push_back(fd);
        }
      }
      if (shed) {
        // Load-shed from the accept thread: a scrape storm gets 503s, the
        // worker queue stays bounded.
        write_response(fd, {503, "text/plain; charset=utf-8", "overloaded\n"},
                       false);
        ::close(fd);
        account(503, 0.0);
      } else {
        cv.notify_one();
      }
    }
  }
};

HttpServer::HttpServer(HttpServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  impl_->routes[std::move(path)].get = std::move(handler);
}

void HttpServer::handle_post(std::string path, Handler handler) {
  impl_->routes[std::move(path)].post = std::move(handler);
}

void HttpServer::handle_prefix(std::string prefix, Handler handler,
                               bool post) {
  impl_->prefix_routes.push_back(
      {std::move(prefix), std::move(handler), post});
}

bool HttpServer::start() {
  if (impl_->running.load()) {
    error_ = "server already running";
    return false;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Skip TIME_WAIT on restart. This does NOT allow stealing a port another
  // live listener holds — bind below still fails with EADDRINUSE, which is
  // the diagnostic the CLI's port-conflict exit path relies on.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl_->options.port);
  if (::inet_pton(AF_INET, impl_->options.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    error_ = "invalid bind address: " + impl_->options.bind_address;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "bind " + impl_->options.bind_address + ":" +
             std::to_string(impl_->options.port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  impl_->bound_port.store(ntohs(bound.sin_port));

  impl_->listen_fd = fd;
  impl_->stopping.store(false);
  impl_->running.store(true);
  impl_->workers.reserve(impl_->options.num_workers);
  for (std::size_t i = 0; i < impl_->options.num_workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  error_.clear();
  return true;
}

void HttpServer::stop() {
  if (!impl_->running.load()) return;
  impl_->stopping.store(true);
  impl_->cv.notify_all();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  for (auto& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  impl_->workers.clear();
  // Workers bail on stop without draining; connections still queued get a
  // hangup rather than a stall.
  for (int fd : impl_->pending) ::close(fd);
  impl_->pending.clear();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->bound_port.store(0);
  impl_->running.store(false);
  impl_->stopping.store(false);
}

bool HttpServer::running() const { return impl_->running.load(); }

std::uint16_t HttpServer::port() const { return impl_->bound_port.load(); }

std::uint64_t HttpServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

void HttpServer::set_stats(const Registry* stats) {
  impl_->stats.store(stats, std::memory_order_release);
}

}  // namespace funnel::obs

#endif  // FUNNEL_OBS_OFF
