#include "detect/improved_sst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "linalg/hankel.h"
#include "linalg/svd.h"
#include "linalg/sym_eigen.h"

namespace funnel::detect {

ImprovedSst::ImprovedSst(SstGeometry geometry) : geo_(geometry) {
  FUNNEL_REQUIRE(geo_.omega >= 2, "SST needs omega >= 2");
  FUNNEL_REQUIRE(geo_.eta >= 1 && geo_.eta < geo_.omega,
                 "SST needs 1 <= eta < omega");
}

double ImprovedSst::score(std::span<const double> window) {
  FUNNEL_REQUIRE(window.size() == geo_.window(),
                 "ImprovedSst window size mismatch");
  const std::vector<double> z = standardize_window(window, geo_.half());
  if (z.empty()) return std::numeric_limits<double>::quiet_NaN();

  const std::span<const double> past(z.data(), geo_.half());
  const std::span<const double> future(z.data() + geo_.half(), geo_.half());

  // Past normal subspace U_eta from the SVD of B (Eq. 2).
  const linalg::Matrix b = linalg::hankel(past, geo_.omega, geo_.omega);
  const linalg::Svd bs = linalg::jacobi_svd(b);

  // Future eigen-directions of A·Aᵀ (Eq. 8): eta leading pairs.
  const linalg::Matrix a = linalg::hankel(future, geo_.omega, geo_.omega);
  const linalg::SymEigen fe = linalg::sym_eigen(linalg::gram_rows(a));

  double weighted = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < geo_.eta && i < fe.values.size(); ++i) {
    const double lambda = std::max(fe.values[i], 0.0);
    if (lambda <= 0.0) break;
    const linalg::Vector beta_i = fe.vectors.col(i);
    double proj2 = 0.0;
    for (std::size_t j = 0; j < geo_.eta; ++j) {
      if (bs.singular_values[j] <= 0.0) break;
      const linalg::Vector uj = bs.u.col(j);
      const double p = linalg::dot(beta_i, uj);
      proj2 += p * p;
    }
    const double phi = std::clamp(1.0 - proj2, 0.0, 1.0);  // Eq. 10
    weighted += lambda * phi;                               // Eq. 9
    total_weight += lambda;
  }
  if (total_weight <= 0.0) return 0.0;
  const double xhat =
      std::max(weighted / total_weight, geo_.novelty_floor);

  return xhat * robust_score_factor(past, future);  // Eq. 11
}

}  // namespace funnel::detect
