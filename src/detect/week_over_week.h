// Week-over-week baseline detector (extension).
//
// §6 cites Chen et al. (SIGCOMM'13), who detect changes in seasonal
// time series by time-series decomposition and week-over-week comparison.
// This scorer implements that family's simplest robust member: the score of
// the current window is the MAD-normalized difference between its samples
// and the samples exactly one week (or one day) earlier.
//
// Unlike the SST family it needs a full season of history per score, so it
// cannot run on freshly created KPIs — but on long-lived seasonal KPIs it
// is a natural sanity baseline for FUNNEL's seasonality-exclusion path.
//
// The scorer's window is `lookback + compare` samples: the leading
// `lookback` samples (ending exactly one season before the compare block)
// provide the reference, the trailing `compare` samples are under test —
// callers feed it windows where the gap between the two equals the season.
// The convenience function `wow_score_series` handles the alignment over a
// full series.
#pragma once

#include <vector>

#include "common/minute_time.h"
#include "detect/scorer.h"

namespace funnel::detect {

struct WeekOverWeekParams {
  /// Season length in minutes (kMinutesPerWeek, or kMinutesPerDay for
  /// day-over-day).
  MinuteTime season = kMinutesPerWeek;
  /// Samples compared per score.
  std::size_t compare = 30;
};

/// Scores a series against itself one season earlier. This detector does
/// not fit the fixed-window ChangeScorer shape (its two blocks are a season
/// apart), so it is exposed as a standalone function: out[i] is the score
/// of the compare block ending at sample index i (NaN while there is not
/// yet a full season of history or the blocks contain non-finite samples).
///
/// Score: |median(now) - median(then)| / (MAD-sigma(then) + epsilon),
/// i.e. a robust z-score of the level difference vs the same clock time
/// one season ago.
std::vector<double> wow_score_series(std::span<const double> series,
                                     const WeekOverWeekParams& params);

}  // namespace funnel::detect
