# Service-plane benchmark smoke: run bench/service_throughput --quick and
# validate the BENCH_service.json shape — every grid point sustained a
# positive samples/s through the live HTTP path, and every watch cycle
# produced its verdict (the bench exits 1 if a verdict goes missing).
# Usage:
#   cmake -DBENCH=<service_throughput> -DWORK_DIR=<dir> -P service_bench_smoke.cmake

foreach(var BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "service_bench_smoke: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(json_path "${WORK_DIR}/BENCH_service.json")

execute_process(
  COMMAND "${BENCH}" --quick --json "${json_path}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc)
if(rc EQUAL 77)
  # FUNNEL_OBS=OFF compiles the HTTP server out; nothing to measure.
  message(STATUS "service_bench_smoke: SKIPPED (FUNNEL_OBS=OFF build)")
  return()
endif()
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "service_bench_smoke: bench exited with ${rc}")
endif()

if(NOT EXISTS "${json_path}")
  message(FATAL_ERROR "service_bench_smoke: ${json_path} was not written")
endif()
file(READ "${json_path}" json)

# Shape: workload block, a non-empty grid, and the verdict block.
string(JSON quick ERROR_VARIABLE jerr GET "${json}" workload quick)
if(jerr)
  message(FATAL_ERROR "service_bench_smoke: missing workload.quick: ${jerr}")
endif()

string(JSON grid_len ERROR_VARIABLE jerr LENGTH "${json}" grid)
if(jerr OR grid_len LESS 1)
  message(FATAL_ERROR "service_bench_smoke: empty or missing grid: ${jerr}")
endif()
math(EXPR last "${grid_len} - 1")
foreach(i RANGE ${last})
  foreach(key tenants producers samples_per_s p95_request_ms)
    string(JSON v ERROR_VARIABLE jerr GET "${json}" grid ${i} ${key})
    if(jerr)
      message(FATAL_ERROR
        "service_bench_smoke: grid[${i}].${key} missing: ${jerr}")
    endif()
    if(v LESS_EQUAL 0)
      message(FATAL_ERROR
        "service_bench_smoke: grid[${i}].${key} = ${v} (expected > 0)")
    endif()
  endforeach()
endforeach()

foreach(key watches p95_ms max_ms)
  string(JSON v ERROR_VARIABLE jerr GET "${json}" verdict ${key})
  if(jerr)
    message(FATAL_ERROR "service_bench_smoke: verdict.${key} missing: ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR
      "service_bench_smoke: verdict.${key} = ${v} (expected > 0)")
  endif()
endforeach()

string(JSON p95 GET "${json}" verdict p95_ms)
message(STATUS
  "service_bench_smoke: OK — ${grid_len} grid points, verdict p95 ${p95} ms")
