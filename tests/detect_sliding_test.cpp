// Tests for the sliding runner, alarm policy semantics and the online
// detector's parity with the batch path.
#include "detect/sliding.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

#include "common/rng.h"
#include "detect/improved_sst.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::detect {
namespace {

// A deterministic scorer for policy tests: score = value at the window
// start (window size 3, offset 1).
class ProbeScorer final : public ChangeScorer {
 public:
  std::size_t window_size() const override { return 3; }
  std::size_t change_offset() const override { return 1; }
  double score(std::span<const double> window) override { return window[0]; }
  const char* name() const override { return "probe"; }
};

TEST(ScoreSeries, AlignmentAndLength) {
  ProbeScorer p;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto scores = score_series(p, xs);
  EXPECT_EQ(scores, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(score_series(p, std::vector<double>{1.0, 2.0}).empty());
}

TEST(FirstAlarm, RequiresPersistenceRun) {
  // Scores: one lone exceedance, then a run of three.
  const std::vector<double> scores{0.0, 9.0, 0.0, 9.0, 9.0, 9.0, 0.0};
  const AlarmPolicy p1{.threshold = 1.0, .persistence = 1};
  const AlarmPolicy p3{.threshold = 1.0, .persistence = 3};
  const auto a1 = first_alarm(scores, 3, 100, p1);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->first_window, 1u);
  // Alarm minute = series_start + index + window - 1.
  EXPECT_EQ(a1->minute, 100 + 1 + 3 - 1);
  const auto a3 = first_alarm(scores, 3, 100, p3);
  ASSERT_TRUE(a3.has_value());
  EXPECT_EQ(a3->first_window, 3u);
  EXPECT_EQ(a3->minute, 100 + 5 + 3 - 1);
  EXPECT_DOUBLE_EQ(a3->peak_score, 9.0);
}

TEST(FirstAlarm, NanBreaksRun) {
  const std::vector<double> scores{9.0, std::nan(""), 9.0, 9.0};
  const AlarmPolicy p{.threshold = 1.0, .persistence = 3};
  EXPECT_FALSE(first_alarm(scores, 3, 0, p).has_value());
  const AlarmPolicy p2{.threshold = 1.0, .persistence = 2};
  const auto a = first_alarm(scores, 3, 0, p2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_window, 2u);
}

TEST(FirstAlarm, NanConsumesPatienceSlackLikeADent) {
  // Persistence-in-patience semantics with gaps (sliding.h): persistence 3
  // within patience 4 tolerates exactly one interruption — and a NaN score
  // is an interruption, indistinguishable from a sub-threshold dip.
  const AlarmPolicy p{.threshold = 1.0, .persistence = 3, .patience = 4};
  const std::vector<double> one_nan{9.0, 9.0, std::nan(""), 9.0};
  const auto a = first_alarm(one_nan, 3, 0, p);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_window, 0u);
  EXPECT_EQ(a->minute, 0 + 3 + 3 - 1);  // fires on the window at index 3

  // Two consecutive NaNs exceed the patience surplus: the run dies.
  const std::vector<double> two_nans{9.0, 9.0, std::nan(""), std::nan(""),
                                     9.0, 9.0};
  EXPECT_FALSE(first_alarm(two_nans, 3, 0, p).has_value());
}

TEST(FirstAlarm, AlarmReestablishesOnlyAfterGapClears) {
  // A gap longer than the patience surplus kills the run; the sustained
  // exceedance after it must rebuild the full persistence count from
  // scratch — the alarm is delayed, never resurrected mid-gap.
  const AlarmPolicy p{.threshold = 1.0, .persistence = 3, .patience = 4};
  const std::vector<double> scores{9.0, 9.0, std::nan(""), std::nan(""),
                                   9.0, 9.0, 9.0};
  const auto a = first_alarm(scores, 3, 0, p);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_window, 4u);  // the pre-gap hits contribute nothing
  EXPECT_EQ(a->minute, 0 + 6 + 3 - 1);
}

TEST(FirstAlarm, NoExceedanceNoAlarm) {
  const std::vector<double> scores{0.1, 0.2, 0.3};
  EXPECT_FALSE(
      first_alarm(scores, 3, 0, AlarmPolicy{.threshold = 0.5, .persistence = 1})
          .has_value());
  EXPECT_FALSE(first_alarm({}, 3, 0, AlarmPolicy{}).has_value());
}

TEST(FirstAlarm, ThresholdIsStrict) {
  const std::vector<double> scores{0.5, 0.5};
  EXPECT_FALSE(
      first_alarm(scores, 1, 0, AlarmPolicy{.threshold = 0.5, .persistence = 1})
          .has_value());
}

TEST(FirstAlarm, ValidatesPersistence) {
  EXPECT_THROW((void)first_alarm(std::vector<double>{1.0}, 1, 0,
                                 AlarmPolicy{.threshold = 0.0,
                                             .persistence = 0}),
               InvalidArgument);
}

TEST(AllAlarms, RearmsAfterQuietGap) {
  const std::vector<double> scores{9.0, 9.0, 0.0, 0.0, 9.0, 9.0, 9.0};
  const AlarmPolicy p{.threshold = 1.0, .persistence = 2};
  const auto alarms = all_alarms(scores, 3, 0, p);
  ASSERT_EQ(alarms.size(), 2u);
  EXPECT_EQ(alarms[0].first_window, 0u);
  EXPECT_EQ(alarms[1].first_window, 4u);
}

TEST(AllAlarms, SustainedRunRefiresEveryPersistence) {
  const std::vector<double> scores(20, 9.0);
  const AlarmPolicy p{.threshold = 1.0, .persistence = 3};
  const auto alarms = all_alarms(scores, 3, 0, p);
  // Runs complete at indices 2, 5, 8, 11, 14, 17.
  ASSERT_EQ(alarms.size(), 6u);
  EXPECT_EQ(alarms[0].first_window, 0u);
  EXPECT_EQ(alarms[1].minute - alarms[0].minute, 3);
}

TEST(DetectFirst, EndToEndOnSyntheticShift) {
  workload::StationaryParams params;
  workload::KpiStream s(workload::make_stationary(params, Rng(5)));
  s.add_effect(workload::LevelShift{120, 8.0});
  const auto series = workload::render(s, 0, 240);
  ImprovedSst scorer(SstGeometry{.omega = 9, .eta = 3});
  const auto alarm = detect_first(scorer, series, 0,
                                  AlarmPolicy{.threshold = 0.4,
                                              .persistence = 7});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_GE(alarm->minute, 120);
  EXPECT_LE(alarm->minute, 160);
}

TEST(DetectFirst, GapStraddlingAlarmWindowSuppressesAlarm) {
  // The dirty-feed hazard documented in sliding.h: a feed outage that
  // swallows the change transition suppresses the alarm outright — every
  // window overlapping the gap scores NaN, and post-gap windows see only
  // the (stationary) new level. The silence is NOT a clean bill of health;
  // the assessment layer reports it as inconclusive via the window
  // QualityReport (funnel_assessor_test covers that half).
  workload::StationaryParams params;
  workload::KpiStream s(workload::make_stationary(params, Rng(5)));
  s.add_effect(workload::LevelShift{120, 8.0});
  auto series = workload::render(s, 0, 240);
  const AlarmPolicy policy{.threshold = 0.4, .persistence = 7,
                           .patience = 10};

  ImprovedSst clean_scorer(SstGeometry{.omega = 9, .eta = 3});
  ASSERT_TRUE(detect_first(clean_scorer, series, 0, policy).has_value());

  // Gap from just before the shift until well past the would-be alarm
  // minute: the whole transition is invisible.
  for (std::size_t i = 115; i < 175; ++i) series[i] = std::nan("");
  ImprovedSst gapped_scorer(SstGeometry{.omega = 9, .eta = 3});
  EXPECT_FALSE(detect_first(gapped_scorer, series, 0, policy).has_value());
}

TEST(DetectFirst, GapBeforeChangeDoesNotSuppressLaterAlarm) {
  // A gap that heals before the change leaves the alarm intact (merely
  // consuming score positions): detection quality is about the window
  // around the change, not the whole history.
  workload::StationaryParams params;
  workload::KpiStream s(workload::make_stationary(params, Rng(5)));
  s.add_effect(workload::LevelShift{150, 8.0});
  auto series = workload::render(s, 0, 280);
  for (std::size_t i = 60; i < 80; ++i) series[i] = std::nan("");
  ImprovedSst scorer(SstGeometry{.omega = 9, .eta = 3});
  const auto alarm = detect_first(
      scorer, series, 0,
      AlarmPolicy{.threshold = 0.4, .persistence = 7, .patience = 10});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_GE(alarm->minute, 150);
  EXPECT_LE(alarm->minute, 190);
}

TEST(OnlineDetector, MatchesBatchAlarm) {
  workload::StationaryParams params;
  workload::KpiStream s(workload::make_stationary(params, Rng(6)));
  s.add_effect(workload::LevelShift{100, 8.0});
  const auto series = workload::render(s, 0, 200);
  const AlarmPolicy policy{.threshold = 0.4, .persistence = 7};

  ImprovedSst batch_scorer(SstGeometry{.omega = 9, .eta = 3});
  const auto batch =
      detect_first(batch_scorer, series, 0, policy);

  ImprovedSst online_scorer(SstGeometry{.omega = 9, .eta = 3});
  OnlineDetector online(online_scorer, policy, 0);
  std::optional<Alarm> hit;
  for (double v : series) {
    const auto a = online.push(v);
    if (a && !hit) hit = a;
  }
  ASSERT_EQ(batch.has_value(), hit.has_value());
  if (batch) {
    EXPECT_EQ(batch->minute, hit->minute);
    EXPECT_NEAR(batch->peak_score, hit->peak_score, 1e-12);
  }
  EXPECT_TRUE(online.alarmed());
}

TEST(OnlineDetector, LatchesUntilRearmed) {
  ProbeScorer p;
  OnlineDetector d(p, AlarmPolicy{.threshold = 1.0, .persistence = 1}, 0);
  EXPECT_FALSE(d.push(5.0).has_value());  // buffer not full yet
  EXPECT_FALSE(d.push(5.0).has_value());
  const auto a = d.push(5.0).has_value();  // first full window scores 5
  EXPECT_TRUE(a);
  EXPECT_FALSE(d.push(5.0).has_value());  // latched
  d.rearm();
  EXPECT_TRUE(d.push(5.0).has_value());
}

TEST(OnlineDetector, TracksMinutes) {
  ProbeScorer p;
  OnlineDetector d(p, AlarmPolicy{.threshold = 100.0, .persistence = 1}, 50);
  EXPECT_EQ(d.next_minute(), 50);
  (void)d.push(0.0);
  EXPECT_EQ(d.next_minute(), 51);
}

TEST(OnlineDetector, AlarmMinuteMatchesPolicyArithmetic) {
  ProbeScorer p;  // window 3, score = first sample of window
  OnlineDetector d(p, AlarmPolicy{.threshold = 1.0, .persistence = 2}, 10);
  // Samples: minute 10 -> 9, 11 -> 9, 12 -> 0, 13 -> 0...
  // Window [10..12] scores 9 (run 1), window [11..13] scores 9 (run 2):
  // alarm fires when the sample of minute 13 arrives.
  (void)d.push(9.0);
  (void)d.push(9.0);
  EXPECT_FALSE(d.push(0.0).has_value());
  const auto a = d.push(0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->minute, 13);
}

}  // namespace
}  // namespace funnel::detect
