// Table 3 — deployment statistics for a simulated operating period.
//
// The paper reports one week of production operation: ~24k software changes
// per day over dozens of services, ~2.3M KPIs, ~10k KPI changes flagged per
// day, verified precision 98.21%. We simulate a scaled-down period with the
// same structure (most changes are no-ops, a small fraction have impact,
// confounders abound) and report the same row.
#include <chrono>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/thread_pool.h"

using namespace funnel;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t threads = bench::threads_arg(argc, argv);
  const bool stats = bench::stats_arg(argc, argv);
  const char* stats_json = bench::stats_json_arg(argc, argv);
  bench::print_header("Table 3: simulated deployment statistics");

  evalkit::DatasetParams p;
  p.seed = 777;
  p.services = quick ? 6 : 19;
  p.servers_per_service = 6;
  p.treated_servers = 2;
  p.positive_changes = quick ? 4 : 16;
  p.negative_changes = quick ? 28 : 124;  // ~11% of changes have impact
  p.history_days = 31;
  p.confounder_probability = 0.3;

  std::printf("simulating the deployment period (%s)...\n",
              quick ? "quick" : "full");
  const auto ds = evalkit::build_dataset(p);

  // Deployment setting: most of the simulated services are not
  // change-sensitive, so the DiD threshold is the larger production value
  // (§3.2.4: "Otherwise, the threshold can be set larger").
  core::FunnelConfig cfg = bench::funnel_config();
  cfg.did.alpha_threshold = 1.0;
  cfg.num_threads = threads;
  bench::apply_sst_args(cfg, argc, argv);  // --sst-fast / --no-cascade
  const obs::Registry reg;
  if (stats || stats_json != nullptr) cfg.stats = &reg;
  const core::Funnel funnel(cfg, ds->topo, ds->log, ds->store);

  std::uint64_t tp = 0, fp = 0;
  std::size_t kpi_changes_detected = 0;
  std::size_t changes_with_impact = 0;

  // Ground truth per (change, metric).
  std::map<std::pair<changes::ChangeId, tsdb::MetricId>, bool> truth;
  for (const evalkit::ItemTruth& item : ds->items) {
    truth[{item.change_id, item.metric}] = item.change_induced;
  }

  // The whole period in one batch — the daily-review workload the parallel
  // engine distributes across the pool (whole changes, then KPIs within
  // each change).
  MinuteTime last_change = 0;
  for (const changes::SoftwareChange& ch : ds->log.all()) {
    last_change = std::max(last_change, ch.time);
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<core::AssessmentReport> reports =
      funnel.assess_window(0, last_change + 1);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  for (const core::AssessmentReport& report : reports) {
    kpi_changes_detected += report.kpi_changes_detected();
    if (report.change_has_impact()) ++changes_with_impact;
    for (const core::ItemVerdict& v : report.items) {
      if (!v.caused_by_software_change()) continue;
      // The operations team verifies each flagged KPI change (§5): compare
      // against the injected ground truth.
      if (truth[{report.change_id, v.metric}]) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }

  const double precision =
      tp + fp == 0 ? 1.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fp);
  const MinuteTime days =
      (ds->store.series(ds->items.front().metric).end_time() -
       ds->change_day_start + kMinutesPerDay - 1) /
      kMinutesPerDay;

  Table t({"statistic", "ours", "paper (daily, production scale)"});
  t.add_row({"#software changes", std::to_string(ds->log.size()),
             "24119"});
  t.add_row({"#changes with impact", std::to_string(changes_with_impact),
             "268"});
  t.add_row({"#KPIs monitored", std::to_string(ds->store.metric_count()),
             "2256390"});
  t.add_row({"#KPI changes flagged", std::to_string(kpi_changes_detected),
             "10249"});
  t.add_row({"precision of attributions", format_percent(precision),
             "98.21%"});
  t.add_row({"simulated change days", std::to_string(days), "7"});
  std::printf("\n%s\n", t.to_string().c_str());

  std::printf("assessed %zu changes in %.0f ms wall clock "
              "(num_threads=%zu -> %zu workers)\n",
              reports.size(), wall_ms, threads,
              ThreadPool::resolve_threads(threads));
  std::printf("attributed KPI changes: %llu correct, %llu spurious\n",
              static_cast<unsigned long long>(tp),
              static_cast<unsigned long long>(fp));
  std::printf("(absolute counts are scaled down ~170x from production; the "
              "row to compare is precision)\n");
  if (cfg.stats != nullptr) {
    const obs::Snapshot snap = reg.snapshot();
    const auto sst = snap.histograms.find("funnel.assess.sst_us");
    const auto wait = snap.histograms.find("pool.queue_wait_us");
    if (sst != snap.histograms.end() && sst->second.count > 0) {
      std::printf("stage timing: SST scoring mean %.1f us over %llu KPI "
                  "series\n",
                  sst->second.mean(),
                  static_cast<unsigned long long>(sst->second.count));
    }
    if (wait != snap.histograms.end() && wait->second.count > 0) {
      std::printf("pool queue wait: mean %.1f us over %llu tasks\n",
                  wait->second.mean(),
                  static_cast<unsigned long long>(wait->second.count));
    }
  }
  bench::dump_stats(reg, stats, stats_json);
  return 0;
}
