// Ingest throughput of the sharded metric store — the Table 2 companion for
// the storage layer. Table 2 times the assessment computation; this bench
// times the path in front of it: agents appending 1-minute samples into the
// store while a subscriber (the online FUNNEL stand-in) consumes the push
// feed.
//
// Grid: shards {1, 4, 16} x producer threads {1, 2, 4} x dispatch mode
// {sync, async/kBlock}. Each cell appends the same total number of samples
// over disjoint per-producer metrics (the production layout: one agent owns
// its server's KPIs) and reports wall-clock appends/second including the
// flush() barrier, so async runs pay for their queue drain.
//
// Results go to EXPERIMENTS.md ("Ingest throughput"). On a single-hardware-
// thread container the producer counts can't show parallel speedup — what
// the table still shows is the overhead story: sharding costs nothing when
// uncontended, and the async queue trades a small per-sample cost for never
// running consumer code on the producer thread.
//
// Usage: ingest_throughput [--quick]
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "tsdb/store.h"

namespace funnel::bench {
namespace {

struct Cell {
  std::size_t shards = 1;
  std::size_t producers = 1;
  std::size_t queue = 0;  // 0 = sync
  double seconds = 0.0;
  std::uint64_t samples = 0;

  double rate() const { return seconds > 0 ? samples / seconds : 0.0; }
};

Cell run_cell(std::size_t shards, std::size_t producers, std::size_t queue,
              MinuteTime minutes_per_metric, std::size_t metrics_per_producer) {
  Cell cell{shards, producers, queue};
  tsdb::MetricStore store({.num_shards = shards,
                           .ingest_queue_capacity = queue,
                           .backpressure = tsdb::Backpressure::kBlock});
  // One always-on subscriber, like the deployed online assessor: the sync
  // path pays the callback inline, the async path pays queue + dispatcher.
  std::atomic<std::uint64_t> consumed{0};
  store.subscribe({}, [&](const tsdb::MetricId&, MinuteTime, double) {
    consumed.fetch_add(1, std::memory_order_relaxed);
  });

  // Disjoint metric sets per producer: the single-writer-per-metric layout
  // the ordering guarantee assumes, and the one that lets shards pay off.
  std::vector<std::vector<tsdb::MetricId>> ids(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    for (std::size_t m = 0; m < metrics_per_producer; ++m) {
      ids[p].push_back(tsdb::server_metric(
          "srv" + std::to_string(p) + "_" + std::to_string(m), "kpi"));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  auto produce = [&](std::size_t p) {
    for (MinuteTime t = 0; t < minutes_per_metric; ++t) {
      for (const auto& id : ids[p]) store.append(id, t, 1.0);
    }
  };
  if (producers == 1) {
    produce(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back(produce, p);
    }
    for (auto& t : threads) t.join();
  }
  store.flush();  // async cells pay the drain; sync cells no-op
  cell.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cell.samples = static_cast<std::uint64_t>(minutes_per_metric) *
                 metrics_per_producer * producers;
  if (consumed.load() != cell.samples) {
    std::fprintf(stderr, "warning: consumed %llu of %llu samples\n",
                 static_cast<unsigned long long>(consumed.load()),
                 static_cast<unsigned long long>(cell.samples));
  }
  return cell;
}

}  // namespace
}  // namespace funnel::bench

int main(int argc, char** argv) {
  using namespace funnel;
  using namespace funnel::bench;

  const bool quick = quick_mode(argc, argv);
  const MinuteTime minutes = quick ? 2000 : 20000;
  const std::size_t metrics_per_producer = 8;
  constexpr std::size_t kQueueCapacity = 1024;

  print_header("Ingest throughput: shards x producers x dispatch mode");
  std::printf("%zu metrics/producer, %lld minutes/metric, queue=%zu (async)\n",
              metrics_per_producer, static_cast<long long>(minutes),
              kQueueCapacity);
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %-10s %-8s %12s %12s\n", "shards", "producers", "mode",
              "samples", "appends/s");

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    for (const std::size_t producers : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
      for (const std::size_t queue : {std::size_t{0}, kQueueCapacity}) {
        const Cell c = run_cell(shards, producers, queue, minutes,
                                metrics_per_producer);
        std::printf("%-8zu %-10zu %-8s %12llu %12.0f\n", c.shards,
                    c.producers, queue == 0 ? "sync" : "async",
                    static_cast<unsigned long long>(c.samples), c.rate());
      }
    }
  }
  return 0;
}
