# End-to-end triage smoke: generate a KPI with an injected shift, assess it
# through funnel_detect_csv --change-minute with --journal, then feed the
# journal to funnel_triage and validate the JSON + markdown reports. The
# whole surface in one pipe: journal write path, JSONL codec, replay,
# scorecards, blame, rules, both renderers.
#
# Works under FUNNEL_OBS=OFF too: the journal file is then created but
# empty, and the triage report must agree (events == 0).
#
# Invoked by ctest as:
#   cmake -DGEN=<funnel_generate> -DDET=<funnel_detect_csv>
#         -DTRIAGE=<funnel_triage> -DWORK_DIR=<scratch dir>
#         -P triage_smoke.cmake

foreach(var GEN DET TRIAGE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
cmake_policy(SET CMP0054 NEW)  # quoted if() operands stay literal
set(csv_file "${WORK_DIR}/kpi.csv")
set(journal "${WORK_DIR}/verdicts.jsonl")
set(triage_json "${WORK_DIR}/triage.json")
set(triage_md "${WORK_DIR}/triage.md")

execute_process(
  COMMAND "${GEN}" --class stationary --minutes 2880 --seed 7
          --shift 2000,8.0 --out "${csv_file}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_generate failed (${rc}): ${err}")
endif()

execute_process(
  COMMAND "${DET}" "${csv_file}" --change-minute 2000 --journal "${journal}"
  OUTPUT_VARIABLE det_out RESULT_VARIABLE rc ERROR_VARIABLE det_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_detect_csv failed (${rc}): ${det_err}")
endif()
if(NOT det_err MATCHES "# wrote journal: ")
  message(FATAL_ERROR "missing journal notice on stderr: ${det_err}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "journal file was not created")
endif()

# --journal on an unopenable path exits 3, like --stats-json/--trace.
execute_process(
  COMMAND "${DET}" "${csv_file}" --change-minute 2000
          --journal "${WORK_DIR}/no/such/dir/j.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "unopenable --journal path must exit 3, got ${rc}")
endif()

# Count journaled events (an empty file under FUNNEL_OBS=OFF is legal).
file(STRINGS "${journal}" journal_lines)
list(LENGTH journal_lines n_events)

execute_process(
  COMMAND "${TRIAGE}" "${journal}" --json "${triage_json}" --md "${triage_md}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "funnel_triage failed (${rc}): ${err}")
endif()

file(READ "${triage_json}" json)
string(JSON events ERROR_VARIABLE jerr GET "${json}" events)
if(jerr)
  message(FATAL_ERROR "triage.json did not parse: ${jerr}")
endif()
if(NOT events EQUAL n_events)
  message(FATAL_ERROR
    "triage consumed ${events} events but the journal holds ${n_events}")
endif()

string(JSON total_events GET "${json}" totals events)
if(NOT total_events EQUAL n_events)
  message(FATAL_ERROR "totals.events ${total_events} != ${n_events}")
endif()

if(n_events GREATER 0)
  # The single-KPI run yields one determination: one service card, one KPI
  # card, one blame cluster.
  string(JSON svc_key GET "${json}" by_service 0 key)
  if(NOT svc_key STREQUAL "csv")
    message(FATAL_ERROR "expected service card 'csv', got '${svc_key}'")
  endif()
  string(JSON n_clusters LENGTH "${json}" blame)
  if(n_clusters LESS 1)
    message(FATAL_ERROR "expected at least one blame cluster")
  endif()
  string(JSON det GET "${json}" totals detected)
  if(det LESS 1)
    message(FATAL_ERROR "the 8-sigma shift must be detected, got ${det}")
  endif()
endif()

file(READ "${triage_md}" md)
if(NOT md MATCHES "# Triage report")
  message(FATAL_ERROR "markdown report missing its header")
endif()

# funnel_triage on a missing journal exits 1.
execute_process(
  COMMAND "${TRIAGE}" "${WORK_DIR}/absent.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "missing journal must exit 1, got ${rc}")
endif()

message(STATUS "triage_smoke OK: ${n_events} events journaled and triaged")
