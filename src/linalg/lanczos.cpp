#include "linalg/lanczos.h"

#include <cmath>

#include "common/error.h"

namespace funnel::linalg {

DenseOperator::DenseOperator(Matrix m) : m_(std::move(m)) {
  FUNNEL_REQUIRE(m_.rows() == m_.cols(), "DenseOperator requires square matrix");
}

void DenseOperator::apply(std::span<const double> x, std::span<double> y) const {
  const Vector r = matvec(m_, x);
  std::copy(r.begin(), r.end(), y.begin());
}

LanczosResult lanczos(const LinearOperator& op, std::span<const double> v0,
                      std::size_t k, bool want_basis) {
  const std::size_t n = op.dim();
  FUNNEL_REQUIRE(v0.size() == n, "lanczos seed dimension mismatch");
  FUNNEL_REQUIRE(k >= 1, "lanczos needs at least one step");
  k = std::min(k, n);

  std::vector<Vector> basis;
  basis.reserve(k);

  Vector v(v0.begin(), v0.end());
  const double v0norm = normalize(v);
  FUNNEL_REQUIRE(v0norm > 0.0, "lanczos seed must be nonzero");

  Vector alphas;
  Vector betas;
  Vector w(n, 0.0);

  for (std::size_t j = 0; j < k; ++j) {
    basis.push_back(v);
    op.apply(v, w);
    const double alpha = dot(w, v);
    alphas.push_back(alpha);
    // w <- w - alpha v - beta v_{j-1}, then full reorthogonalization.
    axpy(-alpha, v, w);
    if (j > 0) axpy(-betas.back(), basis[j - 1], w);
    for (const Vector& b : basis) {
      const double proj = dot(w, b);
      axpy(-proj, b, w);
    }
    const double beta = norm2(w);
    if (j + 1 == k) break;
    if (beta <= 1e-13 * std::abs(alphas.front() == 0.0 ? 1.0 : alphas.front()) ||
        beta <= 1e-300) {
      // Krylov space exhausted (C has low rank relative to the seed).
      break;
    }
    betas.push_back(beta);
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / beta;
  }

  LanczosResult out;
  out.t.diag = std::move(alphas);
  out.t.subdiag.assign(betas.begin(),
                       betas.begin() + static_cast<std::ptrdiff_t>(
                                           out.t.diag.size() - 1 < betas.size()
                                               ? out.t.diag.size() - 1
                                               : betas.size()));
  if (want_basis) {
    out.basis = Matrix(n, out.t.diag.size());
    for (std::size_t j = 0; j < out.t.diag.size(); ++j) {
      out.basis.set_col(j, basis[j]);
    }
  }
  return out;
}

}  // namespace funnel::linalg
