// In-memory metric store with push subscriptions.
//
// Stand-in for the paper's centralized Hadoop-based KPI database (§2.2):
// agents append 1-minute samples per MetricId; consumers either query ranges
// (batch assessment) or subscribe and get samples pushed as they arrive
// (online FUNNEL). Service KPIs can be stored directly or derived by
// aggregating instance KPIs.
//
// Thread-safety contract (audited for the parallel assessment engine): the
// const methods perform pure lookups — no caches, no lazy indexes, no
// mutable members — so any number of threads may read concurrently without
// locks. Mutation (create/append/insert/subscribe/unsubscribe) is NOT
// synchronized against readers; interleave writes and parallel assessment
// only with external coordination.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "obs/registry.h"
#include "tsdb/metric.h"
#include "tsdb/series.h"

namespace funnel::tsdb {

using SubscriptionId = std::uint64_t;

class MetricStore {
 public:
  /// Create an empty series starting at `start`. Creating an existing metric
  /// throws.
  void create(const MetricId& id, MinuteTime start);

  bool has(const MetricId& id) const;

  /// Append a sample; creates the series (starting at t) when absent.
  /// Notifies matching subscribers synchronously — the paper's sub-second
  /// push from database to FUNNEL.
  void append(const MetricId& id, MinuteTime t, double value);

  /// Bulk-insert a prebuilt series (no subscriber notification) — the bulk
  /// backfill path scenario builders use. Throws when the metric exists.
  void insert(const MetricId& id, TimeSeries series);

  /// Series lookup; throws NotFound when absent.
  const TimeSeries& series(const MetricId& id) const;

  std::size_t metric_count() const { return series_.size(); }

  /// All metric ids, ordered.
  std::vector<MetricId> metrics() const;

  /// Metric ids of one entity kind whose entity name matches exactly.
  std::vector<MetricId> metrics_of(EntityKind kind,
                                   const std::string& entity) const;

  /// Copy of [t0, t1) for one metric (throws when not covered).
  std::vector<double> query(const MetricId& id, MinuteTime t0,
                            MinuteTime t1) const;

  /// Pointwise mean across the given metrics over [t0, t1) (skips metrics /
  /// minutes that are missing). This is how a service KPI is derived from
  /// its instance KPIs and how DiD builds group averages.
  TimeSeries aggregate(std::span<const MetricId> ids, MinuteTime t0,
                       MinuteTime t1) const;

  /// Subscribe to samples of the given metrics. The callback runs inside
  /// append(). An empty filter subscribes to everything.
  using Callback =
      std::function<void(const MetricId&, MinuteTime, double)>;
  SubscriptionId subscribe(std::vector<MetricId> filter, Callback cb);
  void unsubscribe(SubscriptionId id);
  std::size_t subscriber_count() const { return subs_.size(); }

  /// Attach a telemetry registry (null detaches): append() then counts
  /// samples (`tsdb.store.appends`), subscriber callbacks
  /// (`tsdb.store.notifications`) and times the synchronous dispatch loop
  /// (`tsdb.store.dispatch_us`). The registry must outlive the store.
  void set_stats(const obs::Registry* stats) { stats_ = stats; }

 private:
  struct Subscription {
    std::vector<MetricId> filter;  // sorted; empty = all
    Callback callback;
  };

  std::map<MetricId, TimeSeries> series_;
  std::map<SubscriptionId, Subscription> subs_;
  SubscriptionId next_sub_ = 1;
  const obs::Registry* stats_ = nullptr;
};

}  // namespace funnel::tsdb
