// Chaos harness: every fault kind the collection layer can exhibit is
// streamed through the FULL batch and online pipelines, and the robustness
// contract of docs/ROBUSTNESS.md is asserted cell by cell:
//
//   1. No fault plan crashes or throws out of the assessor.
//   2. An empty fault plan is a perfect pass-through: reports are
//      byte-identical to a run without the injector plumbing.
//   3. A faulted verdict either matches the clean run's cause or degrades
//      to Cause::kInconclusive with a machine-readable reason — never a
//      silently *different* conclusive verdict.
//   4. The quality report and the inconclusive reason survive every export
//      surface: to_json, to_json_explained and the trace span attributes.
//
// Every cell runs a fixed (spec, seed) pair, so the grid is deterministic:
// the same binary produces the same verdicts forever, and a failure names
// the exact plan that caused it.
#include <cmath>
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "funnel/assessor.h"
#include "funnel/online.h"
#include "funnel/report_json.h"
#include "obs/trace.h"
#include "workload/faults.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace funnel::core {
namespace {

using workload::FaultDelivery;
using workload::FaultInjector;
using workload::FaultSpec;
using workload::parse_fault_spec;

// ---------------------------------------------------------------------------
// FaultInjector unit tests: the determinism the whole grid rests on.
// ---------------------------------------------------------------------------

std::vector<FaultDelivery> run_plan(const FaultSpec& spec, std::uint64_t seed,
                                    std::size_t n) {
  FaultInjector inj(spec, seed);
  std::vector<FaultDelivery> out;
  for (std::size_t t = 0; t < n; ++t) {
    for (const auto& d : inj.push(static_cast<MinuteTime>(t), 100.0 + t)) {
      out.push_back(d);
    }
  }
  for (const auto& d : inj.drain()) out.push_back(d);
  return out;
}

TEST(FaultInjector, EmptySpecIsPerfectPassThrough) {
  const auto plan = run_plan(FaultSpec{}, 42, 50);
  ASSERT_EQ(plan.size(), 50u);
  for (std::size_t t = 0; t < plan.size(); ++t) {
    EXPECT_EQ(plan[t].minute, static_cast<MinuteTime>(t));
    EXPECT_DOUBLE_EQ(plan[t].value, 100.0 + t);
  }
  FaultInjector inj;
  (void)run_plan(inj.spec(), 0, 1);
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, SameSeedReplaysTheExactPlan) {
  const FaultSpec spec = parse_fault_spec(
      "drop=0.1,nan=0.05x3,stuck=0.05x4,dup=0.1,reorder=0.1,late=0.1x5");
  const auto a = run_plan(spec, 7, 400);
  const auto b = run_plan(spec, 7, 400);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].minute, b[i].minute) << "delivery " << i;
    // NaN != NaN, so compare bit-level semantics via isnan.
    EXPECT_TRUE(a[i].value == b[i].value ||
                (std::isnan(a[i].value) && std::isnan(b[i].value)))
        << "delivery " << i;
  }
  // A different seed produces a different plan (overwhelmingly likely for
  // 400 samples at these rates).
  const auto c = run_plan(spec, 8, 400);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].minute != c[i].minute;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, CertainDropDeliversNothing) {
  FaultInjector inj(parse_fault_spec("drop=1"), 3);
  for (MinuteTime t = 0; t < 20; ++t) EXPECT_TRUE(inj.push(t, 1.0).empty());
  EXPECT_TRUE(inj.drain().empty());
  EXPECT_EQ(inj.stats().dropped, 20u);
}

TEST(FaultInjector, SpecStringRoundTrips) {
  const std::string canonical = "drop=0.1,nan=0.05x3,dup=0.2,late=0.1x5";
  EXPECT_EQ(to_string(parse_fault_spec(canonical)), canonical);
  EXPECT_EQ(to_string(parse_fault_spec("")), "none");
  EXPECT_EQ(to_string(parse_fault_spec("none")), "none");
  EXPECT_THROW((void)parse_fault_spec("drop=1.5"), InvalidArgument);
  EXPECT_THROW((void)parse_fault_spec("gremlin=0.5"), InvalidArgument);
  EXPECT_THROW((void)parse_fault_spec("nan=0.5x0"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The chaos grid fixture.
// ---------------------------------------------------------------------------

constexpr MinuteTime kTc = 400;   ///< change minute
constexpr MinuteTime kEnd = 520;  ///< last rendered minute (tc + horizon)

// Quality thresholds tight enough that any fault pattern capable of hiding
// the 8-sigma shift from the detector also fails the quality gate — the
// property that keeps invariant 3 above honest. Flatline gate sits below
// FaultSpec::stuck_run so stuck-at collectors are caught; there is no full
// baseline day before kTc, so the historical fallback genuinely fails and
// dead control groups bottom out at kControlGroupEmpty.
FunnelConfig chaos_config() {
  FunnelConfig cfg;
  cfg.baseline_days = 1;
  cfg.quality.min_coverage = 0.95;
  cfg.quality.max_gap_run = 3;
  cfg.quality.max_flat_run = 6;
  cfg.watch_timeout = 30;
  return cfg;
}

// Dark-launch scenario (s1, s2 treated; s3, s4 control) with a strong
// 8-sigma level shift on the treated servers. Clean values are rendered
// once; each run replays them through its own injectors.
struct ChaosScenario {
  topology::ServiceTopology topo;
  changes::ChangeLog log;
  changes::ChangeId change_id = 0;
  std::vector<std::pair<tsdb::MetricId, std::vector<double>>> clean;

  explicit ChaosScenario(double effect = 8.0) {
    const std::vector<std::string> servers{"s1", "s2", "s3", "s4"};
    for (const auto& s : servers) topo.add_server("svc", s);
    changes::SoftwareChange ch;
    ch.service = "svc";
    ch.time = kTc;
    ch.mode = changes::LaunchMode::kDark;
    ch.servers = {"s1", "s2"};
    change_id = log.record(ch, topo);

    Rng rng(7);
    for (const auto& s : servers) {
      workload::StationaryParams p;
      p.level = 50.0;
      workload::KpiStream stream(workload::make_stationary(p, rng.split()));
      if (effect != 0.0 && (s == "s1" || s == "s2")) {
        stream.add_effect(workload::LevelShift{kTc, effect});
      }
      clean.emplace_back(tsdb::server_metric(s, "mem"),
                         workload::render(stream, 0, kEnd));
    }
  }
};

// Batch assessment over series that went through the injector (one per
// metric, seeds offset so the streams are independent).
AssessmentReport run_batch(const ChaosScenario& sc, const FunnelConfig& cfg,
                           const FaultSpec& spec, std::uint64_t seed) {
  tsdb::MetricStore store;
  for (std::size_t i = 0; i < sc.clean.size(); ++i) {
    FaultInjector inj(spec, seed + i);
    store.insert(sc.clean[i].first,
                 workload::apply_faults(
                     tsdb::TimeSeries(0, sc.clean[i].second), inj));
  }
  const Funnel funnel(cfg, sc.topo, sc.log, store);
  return funnel.assess(sc.change_id);
}

// Batch assessment with no injector in the path at all — the reference for
// the empty-plan byte-identity check.
AssessmentReport run_batch_clean(const ChaosScenario& sc,
                                 const FunnelConfig& cfg) {
  tsdb::MetricStore store;
  for (const auto& [id, values] : sc.clean) {
    store.insert(id, tsdb::TimeSeries(0, values));
  }
  const Funnel funnel(cfg, sc.topo, sc.log, store);
  return funnel.assess(sc.change_id);
}

// Online assessment: history [0, kTc) goes through the injector into the
// store, the watch starts, then minutes [kTc, kEnd) stream live —
// delivery faults (late, reorder, duplicate) hit the real ingest path at
// detection time. A feed the faults starved past the deadline is closed by
// the expire() control loop.
AssessmentReport run_online(const ChaosScenario& sc, const FunnelConfig& cfg,
                            const FaultSpec& spec, std::uint64_t seed) {
  tsdb::MetricStore store;
  std::vector<FaultInjector> injectors;
  injectors.reserve(sc.clean.size());
  for (std::size_t i = 0; i < sc.clean.size(); ++i) {
    injectors.emplace_back(spec, seed + i);
    tsdb::TimeSeries history(0);
    for (MinuteTime t = 0; t < kTc; ++t) {
      for (const auto& d : injectors[i].push(t, sc.clean[i].second[t])) {
        (void)history.upsert_at(d.minute, d.value);
      }
    }
    store.insert(sc.clean[i].first, std::move(history));
  }

  FunnelOnline online(cfg, sc.topo, sc.log, store);
  std::optional<AssessmentReport> report;
  online.on_report([&](const AssessmentReport& r) { report = r; });
  online.watch(sc.change_id);

  for (MinuteTime t = kTc; t < kEnd; ++t) {
    for (std::size_t i = 0; i < sc.clean.size(); ++i) {
      for (const auto& d : injectors[i].push(t, sc.clean[i].second[t])) {
        store.append(sc.clean[i].first, d.minute, d.value);
      }
    }
  }
  for (std::size_t i = 0; i < sc.clean.size(); ++i) {
    for (const auto& d : injectors[i].drain()) {
      store.append(sc.clean[i].first, d.minute, d.value);
    }
  }
  if (!report) (void)online.expire(kEnd + cfg.watch_timeout);
  EXPECT_TRUE(report.has_value()) << "watch never finalized";
  return report ? *report : AssessmentReport{};
}

// Online reference run without injectors (plain append of every minute).
AssessmentReport run_online_clean(const ChaosScenario& sc,
                                  const FunnelConfig& cfg) {
  tsdb::MetricStore store;
  for (const auto& [id, values] : sc.clean) {
    tsdb::TimeSeries history(0);
    for (MinuteTime t = 0; t < kTc; ++t) history.append(values[t]);
    store.insert(id, std::move(history));
  }
  FunnelOnline online(cfg, sc.topo, sc.log, store);
  std::optional<AssessmentReport> report;
  online.on_report([&](const AssessmentReport& r) { report = r; });
  online.watch(sc.change_id);
  for (MinuteTime t = kTc; t < kEnd; ++t) {
    for (const auto& [id, values] : sc.clean) store.append(id, t, values[t]);
  }
  EXPECT_TRUE(report.has_value());
  return report ? *report : AssessmentReport{};
}

// Invariant 3: same cause as the clean run, or an honest kInconclusive.
void expect_graceful(const AssessmentReport& faulted,
                     const AssessmentReport& clean, const std::string& label) {
  ASSERT_EQ(faulted.items.size(), clean.items.size()) << label;
  for (std::size_t i = 0; i < faulted.items.size(); ++i) {
    const ItemVerdict& f = faulted.items[i];
    const ItemVerdict& c = clean.items[i];
    ASSERT_EQ(f.metric.to_string(), c.metric.to_string()) << label;
    if (f.cause != c.cause) {
      EXPECT_EQ(f.cause, Cause::kInconclusive)
          << label << " " << f.metric.to_string() << ": clean verdict "
          << to_string(c.cause) << " silently became " << to_string(f.cause);
    }
    if (f.cause == Cause::kInconclusive) {
      EXPECT_NE(f.inconclusive_reason, InconclusiveReason::kNone)
          << label << " " << f.metric.to_string();
    } else {
      EXPECT_EQ(f.inconclusive_reason, InconclusiveReason::kNone)
          << label << " " << f.metric.to_string();
    }
  }
}

struct GridCell {
  const char* name;
  const char* spec;
  std::uint64_t seed;
};

// Six fault kinds plus the everything-at-once cell. Seeds are arbitrary
// but FIXED: the grid is a regression surface, not a fuzzer.
constexpr GridCell kGrid[] = {
    {"drop", "drop=0.1", 101},
    {"nan", "nan=0.05x4", 202},
    {"stuck", "stuck=0.02x8", 303},
    {"dup", "dup=0.2", 404},
    {"reorder", "reorder=0.2", 505},
    {"late", "late=0.1x5", 606},
    {"mixed", "drop=0.05,nan=0.02x4,stuck=0.01x8,dup=0.05,reorder=0.05,late=0.05x5",
     707},
};

// ---------------------------------------------------------------------------
// The grid itself.
// ---------------------------------------------------------------------------

TEST(FunnelChaos, CleanRunAttributesTheShift) {
  const ChaosScenario sc;
  const FunnelConfig cfg = chaos_config();
  const AssessmentReport batch = run_batch_clean(sc, cfg);
  ASSERT_EQ(batch.items.size(), 2u);  // dark launch: treated KPIs only
  for (const auto& v : batch.items) {
    EXPECT_EQ(v.cause, Cause::kSoftwareChange) << v.metric.to_string();
  }
  const AssessmentReport online = run_online_clean(sc, cfg);
  ASSERT_EQ(online.items.size(), 2u);
  for (const auto& v : online.items) {
    EXPECT_EQ(v.cause, Cause::kSoftwareChange) << v.metric.to_string();
    EXPECT_TRUE(v.determined_at.has_value());
  }
}

TEST(FunnelChaos, EmptyFaultPlanIsByteIdentical) {
  const ChaosScenario sc;
  const FunnelConfig cfg = chaos_config();
  const FaultSpec none;

  const AssessmentReport batch_ref = run_batch_clean(sc, cfg);
  const AssessmentReport batch_via = run_batch(sc, cfg, none, 1);
  EXPECT_EQ(to_json(batch_ref), to_json(batch_via));
  EXPECT_EQ(to_json_explained(batch_ref, cfg),
            to_json_explained(batch_via, cfg));

  const AssessmentReport online_ref = run_online_clean(sc, cfg);
  const AssessmentReport online_via = run_online(sc, cfg, none, 1);
  EXPECT_EQ(to_json(online_ref), to_json(online_via));
}

TEST(FunnelChaos, BatchGridDegradesGracefully) {
  const ChaosScenario sc;
  const FunnelConfig cfg = chaos_config();
  const AssessmentReport clean = run_batch_clean(sc, cfg);
  for (const GridCell& cell : kGrid) {
    SCOPED_TRACE(cell.name);
    const FaultSpec spec = parse_fault_spec(cell.spec);
    AssessmentReport faulted;
    ASSERT_NO_THROW(faulted = run_batch(sc, cfg, spec, cell.seed))
        << "batch/" << cell.name;
    expect_graceful(faulted, clean, std::string("batch/") + cell.name);
  }
}

TEST(FunnelChaos, OnlineGridDegradesGracefully) {
  const ChaosScenario sc;
  const FunnelConfig cfg = chaos_config();
  const AssessmentReport clean = run_online_clean(sc, cfg);
  for (const GridCell& cell : kGrid) {
    SCOPED_TRACE(cell.name);
    const FaultSpec spec = parse_fault_spec(cell.spec);
    AssessmentReport faulted;
    ASSERT_NO_THROW(faulted = run_online(sc, cfg, spec, cell.seed))
        << "online/" << cell.name;
    expect_graceful(faulted, clean, std::string("online/") + cell.name);
  }
}

TEST(FunnelChaos, GridIsDeterministic) {
  // The worst cell (everything at once) replayed twice must render the
  // same bytes — the property that makes a grid failure reproducible.
  const ChaosScenario sc;
  const FunnelConfig cfg = chaos_config();
  const FaultSpec spec = parse_fault_spec(kGrid[6].spec);
  EXPECT_EQ(to_json(run_batch(sc, cfg, spec, kGrid[6].seed)),
            to_json(run_batch(sc, cfg, spec, kGrid[6].seed)));
  EXPECT_EQ(to_json(run_online(sc, cfg, spec, kGrid[6].seed)),
            to_json(run_online(sc, cfg, spec, kGrid[6].seed)));
}

// ---------------------------------------------------------------------------
// Invariant 4: the degradation evidence survives every export surface.
// ---------------------------------------------------------------------------

TEST(FunnelChaos, ReasonAndQualitySurviveEveryExportSurface) {
  // Kill the control feeds outright (permanent NaN burst): the treated
  // alarms are real, the §3.2.4 control group is empty, and with no full
  // baseline day the §3.2.5 fallback fails too — the chain bottoms out at
  // kInconclusive / control-group-empty.
  const ChaosScenario sc;
  FunnelConfig cfg = chaos_config();
  obs::Tracer tracer(1 << 16);
  cfg.tracer = &tracer;

  tsdb::MetricStore store;
  const FaultSpec dead = parse_fault_spec("nan=1x4");
  for (std::size_t i = 0; i < sc.clean.size(); ++i) {
    const bool control = i >= 2;  // s3, s4
    FaultInjector inj(control ? dead : FaultSpec{}, 11 + i);
    store.insert(sc.clean[i].first,
                 workload::apply_faults(
                     tsdb::TimeSeries(0, sc.clean[i].second), inj));
  }
  const Funnel funnel(cfg, sc.topo, sc.log, store);
  const AssessmentReport report = funnel.assess(sc.change_id);

  ASSERT_EQ(report.items.size(), 2u);
  for (const auto& v : report.items) {
    EXPECT_EQ(v.cause, Cause::kInconclusive) << v.metric.to_string();
    EXPECT_EQ(v.inconclusive_reason, InconclusiveReason::kControlGroupEmpty);
    EXPECT_TRUE(v.used_fallback_control);
    ASSERT_TRUE(v.quality.has_value());
  }
  EXPECT_EQ(report.kpis_inconclusive(), 2u);
  EXPECT_FALSE(report.change_has_impact());

  // Surface 1: the machine-readable report.
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"inconclusive_reason\":\"control-group-empty\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"fallback_control\":true"), std::string::npos);
  EXPECT_NE(json.find("\"quality\":{"), std::string::npos);

  // Surface 2: the explain report names the reason in its rationale.
  const obs::TraceDump dump = tracer.collect();
  const std::string explained = to_json_explained(report, cfg, &dump);
  EXPECT_NE(explained.find("control-group-empty"), std::string::npos);

  // Surface 3: the trace spans carry the reason as typed attributes.
  if (!obs::kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  std::size_t kpi_spans = 0, did_spans = 0;
  for (const auto& s : dump.spans) {
    const obs::SpanAttr* a = nullptr;
    if (std::string_view(s.name) == "funnel.assess.kpi" &&
        (a = s.find_attr("kpi.inconclusive_reason"))) {
      ++kpi_spans;
      EXPECT_EQ(a->str, "control-group-empty");
    }
    if (std::string_view(s.name) == "funnel.assess.determine" &&
        (a = s.find_attr("did.inconclusive_reason"))) {
      ++did_spans;
      EXPECT_EQ(a->str, "control-group-empty");
    }
  }
  EXPECT_EQ(kpi_spans, 2u);
  EXPECT_EQ(did_spans, 2u);
}

TEST(FunnelChaos, StarvedWatchTimesOutWithReason) {
  // The alarm fires but the feed dies before min_did_window post-change
  // minutes exist: determination stays pending forever, no sample ever
  // crosses the deadline, and only the expire() control loop can close the
  // watch — as kInconclusive / watch-timed-out, alarm preserved.
  const ChaosScenario sc;
  FunnelConfig cfg = chaos_config();
  cfg.min_did_window = 30;  // alarm (~tc+15) arrives before DiD is allowed

  tsdb::MetricStore store;
  for (const auto& [id, values] : sc.clean) {
    tsdb::TimeSeries history(0);
    for (MinuteTime t = 0; t < kTc; ++t) history.append(values[t]);
    store.insert(id, std::move(history));
  }
  FunnelOnline online(cfg, sc.topo, sc.log, store);
  std::optional<AssessmentReport> report;
  online.on_report([&](const AssessmentReport& r) { report = r; });
  online.watch(sc.change_id);

  // The feed dies at tc+25: after the alarm, before post >= 30.
  for (MinuteTime t = kTc; t < kTc + 25; ++t) {
    for (const auto& [id, values] : sc.clean) store.append(id, t, values[t]);
  }
  EXPECT_FALSE(report.has_value());
  EXPECT_EQ(online.expire(kTc + cfg.horizon + cfg.watch_timeout), 1u);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(online.active_watches(), 0u);

  std::size_t timed_out = 0;
  for (const auto& v : report->items) {
    EXPECT_EQ(v.cause, Cause::kInconclusive) << v.metric.to_string();
    if (v.inconclusive_reason == InconclusiveReason::kWatchTimedOut) {
      ++timed_out;
      EXPECT_TRUE(v.alarm.has_value());  // the evidence is kept
    }
  }
  EXPECT_EQ(timed_out, 2u);
  EXPECT_NE(to_json(*report).find("watch-timed-out"), std::string::npos);
}

}  // namespace
}  // namespace funnel::core
