#include "obs/plane.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/export.h"

namespace funnel::obs {
namespace {

// Span names are string literals from our own code, but /tracez output must
// stay valid JSON whatever lands in a ring.
void json_string_to(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

TelemetryPlane::TelemetryPlane(const Registry* stats, PlaneOptions options)
    : stats_(stats),
      options_(std::move(options)),
      server_(options_.http) {
  server_.set_stats(stats_);
}

TelemetryPlane::~TelemetryPlane() { stop(); }

void TelemetryPlane::set_selfmon(SelfMonitor* selfmon) { selfmon_ = selfmon; }

void TelemetryPlane::set_ready(bool ready) {
  ready_.store(ready, std::memory_order_release);
}

void TelemetryPlane::publish_trace(TraceDump dump) {
  auto shared = std::make_shared<const TraceDump>(std::move(dump));
  std::lock_guard lock(trace_mutex_);
  trace_dump_ = std::move(shared);
}

void TelemetryPlane::handle(std::string path, HttpServer::Handler handler) {
  server_.handle(std::move(path), std::move(handler));
}

void TelemetryPlane::handle_post(std::string path,
                                 HttpServer::Handler handler) {
  server_.handle_post(std::move(path), std::move(handler));
}

void TelemetryPlane::handle_prefix(std::string prefix,
                                   HttpServer::Handler handler, bool post) {
  server_.handle_prefix(std::move(prefix), std::move(handler), post);
}

void TelemetryPlane::add_health(
    std::function<std::vector<HealthCheck>()> contributor) {
  health_extras_.push_back(std::move(contributor));
}

bool TelemetryPlane::start() {
  server_.handle("/metrics", [this](const HttpRequest&) { return metrics(); });
  server_.handle("/stats.json",
                 [this](const HttpRequest&) { return stats_json(); });
  server_.handle("/healthz", [this](const HttpRequest&) { return healthz(); });
  server_.handle("/readyz", [this](const HttpRequest&) { return readyz(); });
  server_.handle("/statusz", [this](const HttpRequest&) { return statusz(); });
  server_.handle("/tracez", [this](const HttpRequest&) { return tracez(); });
  server_.handle("/", [this](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        "funnel telemetry plane\n/metrics /stats.json "
                        "/healthz /readyz /statusz /tracez\n",
                        {}};
  });
  if (!server_.start()) return false;
  started_at_ = std::chrono::steady_clock::now();
  return true;
}

void TelemetryPlane::stop() { server_.stop(); }

HttpResponse TelemetryPlane::metrics() const {
  const Snapshot snap = stats_ ? stats_->snapshot() : Snapshot{};
  return {200, "text/plain; version=0.0.4; charset=utf-8",
          prometheus_text(snap), {}};
}

HttpResponse TelemetryPlane::stats_json() const {
  const Snapshot snap = stats_ ? stats_->snapshot() : Snapshot{};
  return {200, "application/json", snapshot_json(snap), {}};
}

HttpResponse TelemetryPlane::healthz() const {
  HealthReport report;
  if (selfmon_ != nullptr) {
    report = selfmon_->health();
  } else if (stats_ != nullptr) {
    report = evaluate_health(stats_->snapshot());
  }
  for (const auto& contributor : health_extras_) {
    for (HealthCheck& check : contributor()) {
      report.healthy = report.healthy && check.ok;
      report.checks.push_back(std::move(check));
    }
  }
  return {report.healthy ? 200 : 503, "text/plain; charset=utf-8",
          report.render(), {}};
}

HttpResponse TelemetryPlane::readyz() const {
  const bool ready = ready_.load(std::memory_order_acquire);
  return {ready ? 200 : 503, "text/plain; charset=utf-8",
          ready ? "ready\n" : "starting\n", {}};
}

HttpResponse TelemetryPlane::statusz() const {
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - started_at_);
  std::ostringstream os;
  os << "funnel telemetry plane\n";
  if (!options_.build_info.empty()) os << "build: " << options_.build_info
                                       << '\n';
  os << "obs_enabled: " << (kEnabled ? "true" : "false") << '\n'
     << "uptime_s: " << uptime.count() << '\n'
     << "port: " << server_.port() << '\n'
     << "requests: " << server_.requests_served() << '\n'
     << "ready: "
     << (ready_.load(std::memory_order_acquire) ? "true" : "false") << '\n';
  if (selfmon_ != nullptr) {
    os << "selfmon: on (ticks " << selfmon_->ticks() << ", alarms "
       << selfmon_->alarms_raised() << ")\n";
  } else {
    os << "selfmon: off\n";
  }
  if (!options_.config_summary.empty()) {
    os << "config: " << options_.config_summary << '\n';
  }
  return {200, "text/plain; charset=utf-8", os.str(), {}};
}

HttpResponse TelemetryPlane::tracez() const {
  std::shared_ptr<const TraceDump> dump;
  {
    std::lock_guard lock(trace_mutex_);
    dump = trace_dump_;
  }
  std::ostringstream os;
  if (dump == nullptr) {
    os << "{\"recorded\":0,\"dropped\":0,\"threads\":0,\"spans\":[]}";
    return {200, "application/json", os.str(), {}};
  }
  // Most recent spans (the dump is sorted by start_ns).
  const std::size_t n =
      std::min(options_.tracez_max_spans, dump->spans.size());
  const std::size_t begin = dump->spans.size() - n;
  const std::uint64_t base =
      dump->spans.empty() ? 0 : dump->spans.front().start_ns;
  os << "{\"recorded\":" << dump->recorded
     << ",\"dropped\":" << dump->dropped << ",\"threads\":" << dump->threads
     << ",\"spans\":[";
  for (std::size_t i = begin; i < dump->spans.size(); ++i) {
    const SpanRecord& s = dump->spans[i];
    if (i > begin) os << ',';
    os << "{\"name\":";
    json_string_to(os, s.name);
    os << ",\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
       << ",\"parent\":" << s.parent_id << ",\"start_us\":"
       << (s.start_ns - base) / 1000 << ",\"dur_us\":"
       << (s.end_ns - s.start_ns) / 1000 << '}';
  }
  os << "]}";
  return {200, "application/json", os.str(), {}};
}

}  // namespace funnel::obs
