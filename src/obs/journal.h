// Durable verdict-event journal — the append-only record of everything
// FUNNEL decided, and why.
//
// The registry (obs/registry.h) answers *how fast*, the tracer
// (obs/trace.h) answers *why this one verdict*; the journal answers the
// operators' aggregate questions at ~24k changes/day scale: which services
// keep shipping regressions, which of several concurrent changes is to
// blame, is the assessor itself healthy. Every determination emitted by
// Funnel::assess / assess_window / FunnelOnline becomes one schema-versioned
// JournalEvent carrying its full decision provenance (change metadata, KPI,
// verdict + cause, SST peak/damping, DiD fit + control kind, telemetry
// quality, cascade gate, time-to-verdict), serialized as one JSON line of an
// append-only JSONL file. The triage layer (src/triage) consumes the stream
// — live or replayed from disk — to build scorecards, blame rankings and
// mined rules (docs/TRIAGE.md).
//
// Design:
//   * The hot path never blocks on disk. append() enqueues the event on a
//     bounded MPSC queue (same backpressure pattern as tsdb::IngestDispatcher)
//     and a single writer thread serializes + writes. The default policy is
//     kBlock — lossless, the journal is an audit record — but kDropOldest is
//     available for deployments that prefer shedding to stalling; drops are
//     counted exactly.
//   * One event = one '\n'-terminated line, written by the single writer,
//     which group-commits: each wakeup drains everything queued and does one
//     fwrite + fflush. Under steady load a batch is one event, so a crash
//     truncates at most the final line; under bursts at most the in-flight
//     batch tail is lost. read_journal() tolerates (and counts) a truncated
//     or corrupt trailing line, so replay after a crash never loses the file.
//   * The journal is a sink: a `const Journal*` on FunnelConfig, null means
//     off at zero cost, and assessment reports are byte-identical with the
//     journal attached or not (regression-tested in funnel_journal_test).
//   * -DFUNNEL_OBS=OFF compiles append()/flush() to no-ops (no queue, no
//     writer thread); the ctor still creates the file so CLI flows keep
//     their exit-code contract. The codec and reader stay live in both
//     builds — replay tooling must parse journals written by enabled builds.
//
// Event-key naming mirrors the stat convention: short, flat, snake_case.
// The schema is versioned ("v"); readers skip lines whose version they do
// not understand rather than failing the replay.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/minute_time.h"
#include "obs/registry.h"

namespace funnel::obs {

/// Journal schema version written by this build. Readers accept any line
/// they can parse and surface `v` so future migrations can branch.
inline constexpr int kJournalSchemaVersion = 1;

/// One verdict determination, flattened for a single JSONL line. Optional
/// fields render only when present, so a parsed-back event compares equal
/// to the emitted one (round-trip tested in funnel_journal_test).
struct JournalEvent {
  int v = kJournalSchemaVersion;
  std::string source;  ///< "batch" | "online"

  // Change metadata (changes::SoftwareChange).
  std::uint64_t change_id = 0;
  MinuteTime change_time = 0;
  std::string service;      ///< the changed service
  std::string change_type;  ///< "software-upgrade" | "config-change"
  std::string launch_mode;  ///< "dark" | "full"

  // KPI identity (tsdb::MetricId).
  std::string metric;       ///< full "kind:entity/kpi" rendering
  std::string entity_kind;  ///< "server" | "instance" | "service"
  std::string kpi;          ///< KPI name — the per-KPI-class triage axis

  // Verdict.
  std::string cause;                ///< core::to_string(Cause)
  std::string inconclusive_reason;  ///< empty unless cause is inconclusive
  bool detected = false;

  // SST evidence (alarm path only).
  std::optional<MinuteTime> alarm_minute;
  std::optional<double> sst_peak;
  std::optional<double> sst_damp_factor;  ///< Eq. 11 factor (batch only)

  // DiD evidence (when a fit ran).
  std::optional<double> did_alpha;
  std::optional<double> did_alpha_scaled;
  std::optional<double> did_t_stat;
  std::optional<std::int64_t> did_n_treated;
  std::optional<std::int64_t> did_n_control;
  std::string control_kind;  ///< "dark-launch-siblings" | "seasonal-window"
  bool fallback_control = false;

  // Telemetry quality of the assessed window (tsdb::QualityReport).
  std::optional<double> coverage;
  std::optional<std::int64_t> window_minutes;
  std::optional<std::int64_t> clean_samples;
  std::optional<std::int64_t> longest_gap_run;
  std::optional<std::int64_t> longest_flat_run;

  // Cascade gate decision on the alarm window (batch, cascade on).
  std::string gate_decision;

  // Rapidity (online path only).
  std::optional<MinuteTime> determined_at;
  std::optional<MinuteTime> time_to_verdict;

  bool operator==(const JournalEvent&) const = default;
};

/// Serialize one event as a single JSON line (no trailing newline). Key
/// order is fixed and doubles render with round-trip precision, so the same
/// event always serializes to the same bytes — the property behind the
/// canonical-sort byte-identity test.
std::string to_jsonl(const JournalEvent& event);

/// Parse one journal line. Returns false (leaving `event` unspecified) on a
/// truncated/corrupt line or an unknown schema version. Tolerates unknown
/// keys, so older readers survive newer writers.
bool parse_jsonl(std::string_view line, JournalEvent& event);

/// Read a journal file back. A truncated or corrupt trailing line (the
/// crash signature) is skipped and counted in `*bad_lines`; a missing file
/// returns an empty vector with `*ok == false` when provided.
std::vector<JournalEvent> read_journal(const std::string& path,
                                       std::size_t* bad_lines = nullptr,
                                       bool* ok = nullptr);

/// Truncate a journal to its first `keep_events` valid events — the
/// crash-restart repair step. A persistent MetricStore checkpoint records
/// how many events the journal held at that consistent point; on restart
/// the assessor rewinds the journal here, reopens it in append mode
/// (JournalOptions::truncate = false) and re-emits everything after the
/// checkpoint during WAL replay, so the final file is byte-identical to an
/// uninterrupted run's. Also discards a torn trailing line. Returns the
/// number of events actually kept (< keep_events when the file is shorter).
std::uint64_t repair_journal(const std::string& path,
                             std::uint64_t keep_events);

/// What Journal::append does when the queue is full (mirrors
/// tsdb::Backpressure; duplicated here so obs stays dependency-free).
enum class JournalBackpressure {
  kBlock,      ///< producer waits for space — lossless (default)
  kDropOldest  ///< shed the oldest queued event — bounded-latency, lossy
};

struct JournalOptions {
  std::size_t queue_capacity = 4096;  ///< clamped to >= 1
  JournalBackpressure policy = JournalBackpressure::kBlock;
  /// false = open in append mode instead of truncating — the crash-restart
  /// path, after repair_journal() has rewound the file to the checkpoint.
  bool truncate = true;
};

#ifdef FUNNEL_OBS_OFF

/// FUNNEL_OBS=OFF: emission compiles to no-ops. The file is still created
/// (empty) so --journal keeps its path/exit-code contract, but no queue or
/// writer thread exists and append() costs nothing.
class Journal {
 public:
  explicit Journal(std::string path, JournalOptions = {});
  ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool ok() const { return ok_; }
  constexpr bool active() const { return false; }
  const std::string& path() const { return path_; }

  void append(JournalEvent) const {}
  void flush() const {}
  std::uint64_t appended() const { return 0; }
  std::uint64_t written() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  void set_stats(const Registry*) const {}
  void set_observer(std::function<void(const JournalEvent&)>) {}

 private:
  std::string path_;
  bool ok_ = false;
};

#else  // FUNNEL_OBS_OFF

/// Append-only JSONL journal with a bounded MPSC queue and one writer
/// thread. Recording goes through a `const Journal*` (a journal is a sink,
/// like the registry and tracer); the journal must outlive every component
/// holding it. flush() is the quiesce barrier: it returns only after every
/// event appended before the call is serialized, handed to the OS and
/// fflush()-ed (or dropped, under kDropOldest).
class Journal {
 public:
  /// Opens (truncates) `path` and starts the writer thread. ok() reports
  /// whether the file opened — callers decide whether that is fatal (the
  /// CLI exits 3, matching --stats-json/--trace).
  explicit Journal(std::string path, JournalOptions options = {});

  /// Drains the queue, flushes and closes the file, joins the thread.
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool ok() const { return ok_; }
  /// True when events appended now will reach the file: opened and enabled.
  bool active() const { return ok_; }
  const std::string& path() const { return path_; }

  /// Enqueue one event (any thread). Blocks or sheds per the policy; never
  /// touches the disk on the calling thread. No-op when !ok().
  void append(JournalEvent event) const;

  /// Barrier: returns once every event appended before the call has been
  /// written + fflush()-ed or dropped. No-op when !ok().
  void flush() const;

  /// Events accepted by append() (excludes shed ones under kDropOldest).
  std::uint64_t appended() const;
  /// Events serialized and written to the file so far.
  std::uint64_t written() const;
  /// Events shed by kDropOldest so far.
  std::uint64_t dropped() const;

  /// Attach a telemetry registry (null detaches): `funnel.journal.events`,
  /// `funnel.journal.bytes`, `funnel.journal.dropped` counters and
  /// `funnel.journal.queue_depth` / `funnel.journal.queue_capacity` gauges
  /// (the pair behind the /healthz journal-writer backlog check). The
  /// registry must outlive this journal.
  void set_stats(const Registry* stats) const;

  /// Optional in-process tap, invoked on the writer thread once per written
  /// event (after serialization, before the next dequeue) — how a live
  /// triage engine consumes the stream without a disk round-trip. Set
  /// before the first append() or after a flush(); the callback must not
  /// call back into this journal.
  void set_observer(std::function<void(const JournalEvent&)> observer);

 private:
  struct Impl;
  std::string path_;
  bool ok_ = false;
  std::unique_ptr<Impl> impl_;
};

#endif  // FUNNEL_OBS_OFF

}  // namespace funnel::obs
