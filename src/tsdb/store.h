// Sharded in-memory metric store with push subscriptions.
//
// Stand-in for the paper's centralized Hadoop-based KPI database (§2.2):
// agents append 1-minute samples per MetricId; consumers either query ranges
// (batch assessment) or subscribe and get samples pushed as they arrive
// (online FUNNEL). Service KPIs can be stored directly or derived by
// aggregating instance KPIs.
//
// Scaling model: the series are hash-partitioned over N shards
// (StoreOptions::num_shards), each behind its own reader-writer lock, so
// concurrent writers on different shards never contend and readers never
// block each other. Subscriber notification can run synchronously inside
// append() (the legacy single-threaded mode) or asynchronously on a bounded
// MPSC queue drained by a dispatcher thread (StoreOptions::
// ingest_queue_capacity > 0) so a slow consumer can never stall a producing
// agent. Reports derived from this store are byte-identical for every shard
// count and for sync vs async dispatch (with a flush() barrier) — verified
// by tsdb_sharded_store_test.
//
// Thread-safety contract — the full repo-wide model lives in
// docs/CONCURRENCY.md ("Metric store"); summary:
//   * has/query/aggregate/metrics/metrics_of/metric_count/read/read_if are
//     internally locked and safe against concurrent append/create/insert.
//   * series() returns a reference whose *identity* is stable for the
//     store's lifetime (nodes are never erased or moved) but whose samples
//     are NOT safe to read while a writer appends to that same metric — use
//     read()/read_if/query for concurrent access, or quiesce writers first.
//   * append() auto-creates the series; create()/insert() throw on an
//     existing metric. This asymmetry is deliberate: append is the agent
//     hot path (millions of agents must not need a registration handshake),
//     while create/insert serve builder and backfill code where writing
//     over an existing series indicates a bug.
//   * subscribe/unsubscribe/subscriber_count are safe from any thread; in
//     async mode, once unsubscribe() returns the callback is guaranteed to
//     not be running and to never run again.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/error.h"
#include "obs/registry.h"
#include "tsdb/dispatch.h"
#include "tsdb/metric.h"
#include "tsdb/persist/wal.h"
#include "tsdb/series.h"
#include "tsdb/shard.h"

namespace funnel::tsdb {

namespace persist {
class PersistBackend;
}

using SubscriptionId = std::uint64_t;

/// Construction knobs. The defaults reproduce the legacy store exactly: one
/// shard, synchronous subscriber dispatch on the producer thread.
struct StoreOptions {
  /// Hash-shard count (>= 1). More shards let concurrent writers and the
  /// parallel assessment engine scale past one lock; reports are
  /// byte-identical for every value.
  std::size_t num_shards = 1;

  /// 0 = synchronous dispatch (subscriber callbacks run inside append on
  /// the producer thread). > 0 = async: samples are queued (this capacity)
  /// and a dispatcher thread runs the callbacks; pair with flush() when a
  /// batch consumer needs every notification delivered.
  std::size_t ingest_queue_capacity = 0;

  /// Full-queue policy in async mode (ignored when synchronous).
  Backpressure backpressure = Backpressure::kBlock;

  // --- Persistence (docs/STORAGE.md). Empty data_dir = the legacy fully
  // in-memory store; every knob below is then ignored. ---

  /// Directory for the WAL + segment files. Set to make the store durable:
  /// construction recovers whatever a previous process left there (replays
  /// the WAL tail into memory), append() write-ahead-logs every sample, and
  /// checkpoint() freezes flushed history into mmap'd columnar segments.
  /// Construction throws persist::StorageError when the directory cannot be
  /// opened or holds damage beyond the WAL's torn-tail tolerance.
  std::string data_dir = {};

  /// WAL group-commit durability (fflush vs + fsync per batch).
  persist::WalDurability durability = persist::WalDurability::kFlush;

  /// WAL MPSC queue capacity (clamped to >= 1).
  std::size_t wal_queue_capacity = 4096;

  /// Background-compact the segment list when it reaches this many files
  /// (0 disables compaction).
  std::size_t compact_threshold = 4;

  /// false (default): recovery fully hydrates segment data into RAM — every
  /// caller behaves exactly as an in-memory store that never crashed.
  /// true: segment history stays on mmap; reads stitch it with the hot
  /// in-memory tail on demand (out-of-core mode). series() then surfaces
  /// only the hot tail — use read()/read_if/query, and note that samples
  /// older than the hot tail's start are dropped as kTooOld rather than
  /// late-filled into already-flushed history.
  bool cold_reads = false;

  /// true: recovery does NOT auto-apply the recovered WAL tail; the caller
  /// replays it via recovered_tail() + replay() so it can interleave its
  /// own bookkeeping (FunnelOnline re-registers watches at kWatch markers)
  /// in original arrival order.
  bool hand_off_tail = false;
};

class MetricStore {
 public:
  MetricStore() : MetricStore(StoreOptions{}) {}
  explicit MetricStore(const StoreOptions& options);
  ~MetricStore();

  MetricStore(const MetricStore&) = delete;
  MetricStore& operator=(const MetricStore&) = delete;

  /// Create an empty series starting at `start`. Creating an existing metric
  /// throws (see the append/insert contract in the header comment).
  void create(const MetricId& id, MinuteTime start);

  bool has(const MetricId& id) const;

  /// Append a sample; creates the series (starting at t) when absent — the
  /// agent hot path never needs a registration handshake. Matching
  /// subscribers are notified synchronously (sync mode) or via the ingest
  /// queue (async mode) — the paper's sub-second push from database to
  /// FUNNEL.
  ///
  /// Dirty feeds are tolerated deterministically (TimeSeries::upsert_at):
  /// late samples fill their NaN hole, duplicates are ignored first-write-
  /// wins, samples before the series start are dropped — so any delivery
  /// order converges to the same series. Dropped samples are not notified;
  /// the rest are (telemetry: tsdb.store.late_fills / duplicates_ignored /
  /// too_old_dropped).
  void append(const MetricId& id, MinuteTime t, double value);

  /// Bulk-insert a prebuilt series (no subscriber notification) — the bulk
  /// backfill path scenario builders use. Throws when the metric exists.
  void insert(const MetricId& id, TimeSeries series);

  /// Series lookup; throws NotFound when absent. The reference stays valid
  /// for the store's lifetime, but reading it concurrently with appends to
  /// the same metric is a data race — quiescent callers only (batch
  /// pipelines after ingestion stops, or after flush() with no writers).
  /// Concurrent readers should use read()/read_if/query instead.
  const TimeSeries& series(const MetricId& id) const;

  /// Run `fn(series)` under the owning shard's reader lock — the safe way
  /// to take windowed views while producers keep appending. Returns fn's
  /// result; throws NotFound when the metric is absent. `fn` must not call
  /// back into this store (the shard lock is held; see docs/CONCURRENCY.md).
  template <typename Fn>
  auto read(const MetricId& id, Fn&& fn) const {
    if (cold_) {
      // Out-of-core mode: stitch segments + hot tail into a private scratch
      // series (no shard lock held while fn runs — the scratch is a copy).
      TimeSeries scratch;
      if (!materialize_cold(id, scratch)) {
        throw NotFound("no such metric: " + id.to_string());
      }
      return std::forward<Fn>(fn)(scratch);
    }
    const StoreShard& sh = shard(id);
    std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    const auto it = sh.series.find(id);
    if (it == sh.series.end()) {
      throw NotFound("no such metric: " + id.to_string());
    }
    return std::forward<Fn>(fn)(it->second);
  }

  /// read() for optional metrics: returns false (without invoking `fn`)
  /// when the metric is absent. Same reentrancy rule as read().
  template <typename Fn>
  bool read_if(const MetricId& id, Fn&& fn) const {
    if (cold_) {
      TimeSeries scratch;
      if (!materialize_cold(id, scratch)) return false;
      std::forward<Fn>(fn)(scratch);
      return true;
    }
    const StoreShard& sh = shard(id);
    std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    const auto it = sh.series.find(id);
    if (it == sh.series.end()) return false;
    std::forward<Fn>(fn)(it->second);
    return true;
  }

  std::size_t metric_count() const;

  /// All metric ids, ordered.
  std::vector<MetricId> metrics() const;

  /// Metric ids of one entity kind whose entity name matches exactly,
  /// ordered.
  std::vector<MetricId> metrics_of(EntityKind kind,
                                   const std::string& entity) const;

  /// Copy of [t0, t1) for one metric (throws when not covered), taken under
  /// the shard lock.
  std::vector<double> query(const MetricId& id, MinuteTime t0,
                            MinuteTime t1) const;

  /// Pointwise mean across the given metrics over [t0, t1) (skips metrics /
  /// minutes that are missing). This is how a service KPI is derived from
  /// its instance KPIs and how DiD builds group averages. Each input series
  /// is copied under its shard lock (per-shard snapshot; the set is not a
  /// single cross-shard atomic view — see docs/CONCURRENCY.md).
  TimeSeries aggregate(std::span<const MetricId> ids, MinuteTime t0,
                       MinuteTime t1) const;

  /// Subscribe to samples of the given metrics. An empty filter subscribes
  /// to everything. Sync mode runs the callback inside append(); async mode
  /// runs it on the dispatcher thread, in per-metric enqueue order.
  using Callback =
      std::function<void(const MetricId&, MinuteTime, double)>;
  SubscriptionId subscribe(std::vector<MetricId> filter, Callback cb);

  /// Remove a subscription (unknown ids are ignored). Async mode: blocks
  /// until any in-flight delivery to this subscription has completed, so
  /// after return the callback never runs again (calling unsubscribe from
  /// inside the callback itself skips the wait and is allowed).
  void unsubscribe(SubscriptionId id);

  std::size_t subscriber_count() const {
    return sub_count_.load(std::memory_order_acquire);
  }

  /// Async mode: barrier — returns once every sample appended before the
  /// call has been delivered (or shed). Sync mode: no-op. Batch tests use
  /// this to make async runs byte-identical to synchronous ones.
  void flush();

  /// True when notification runs on the dispatcher thread.
  bool async() const { return dispatcher_ != nullptr; }

  std::size_t num_shards() const { return shards_.size(); }

  /// Samples shed by the kDropOldest policy so far (0 in sync/kBlock mode).
  std::uint64_t dropped_samples() const {
    return dispatcher_ ? dispatcher_->dropped() : 0;
  }

  /// Async mode: samples currently queued for the dispatcher thread (0 in
  /// sync mode). Racy by nature — an admission-control input, not a
  /// barrier.
  std::size_t queue_depth() const {
    return dispatcher_ ? dispatcher_->depth() : 0;
  }

  /// Async mode: the ingest queue's configured capacity (0 in sync mode) —
  /// the denominator for queue-share admission caps (src/service).
  std::size_t queue_capacity() const {
    return dispatcher_ ? dispatcher_->capacity() : 0;
  }

  /// Attach a telemetry registry (null detaches): append() counts samples
  /// (`tsdb.store.appends`), delivery counts callbacks
  /// (`tsdb.store.notifications`) and times the dispatch loop
  /// (`tsdb.store.dispatch_us`); async mode adds the queue-depth gauge,
  /// dispatch-lag histogram and dropped-samples counter (see dispatch.h);
  /// a persistent store adds the funnel.wal.* / funnel.persist.* family.
  /// The registry must outlive the store.
  void set_stats(const obs::Registry* stats);

  // --- Persistence (active only when StoreOptions::data_dir is set; every
  // method below is a cheap no-op / empty answer otherwise). The on-disk
  // contract lives in docs/STORAGE.md. ---

  /// True when this store write-ahead-logs to a data_dir.
  bool persistent() const { return backend_ != nullptr; }

  /// WAL records recovered after the last checkpoint, in arrival order
  /// (samples + watch markers). Already applied to memory unless the store
  /// was built with hand_off_tail.
  const std::vector<persist::WalRecord>& recovered_tail() const;

  /// Highest WAL seq recovered (checkpoint-covered or tail); the replay
  /// harness resumes its input stream right after this point.
  std::uint64_t recovered_seq() const;

  /// FunnelOnline snapshot stored by the last checkpoint (empty if none) —
  /// feed to FunnelOnline::restore_state before replaying the tail.
  const std::string& recovered_watch_state() const;

  /// Verdict-journal event count at the last checkpoint — feed to
  /// obs::repair_journal so the journal rewinds to the same point.
  std::uint64_t recovered_journal_events() const;

  /// Torn-tail bytes truncated off the WAL during recovery.
  std::uint64_t recovered_wal_skipped_bytes() const;

  /// Apply one recovered record without re-logging it (it is already in the
  /// WAL file). Samples go through the normal upsert + notify path, so
  /// subscribers attached before the replay see the stream exactly as the
  /// original arrival order produced it; watch markers are ignored here
  /// (FunnelOnline handles them). Only meaningful with hand_off_tail.
  void replay(const persist::WalRecord& record);

  /// Log a FunnelOnline watch-registration marker; returns its WAL seq
  /// (0 when not persistent).
  std::uint64_t log_watch_marker(std::uint64_t change_id);

  /// WAL durability barrier: everything appended before the call is on disk
  /// per the durability policy.
  void wal_flush();

  /// Freeze flushed history into a new segment and commit a checkpoint
  /// carrying `watch_state` (a FunnelOnline::snapshot_state blob) and the
  /// verdict-journal event count. Producers must be quiesced (no concurrent
  /// append) — callers checkpoint at natural barriers: end of a CSV run,
  /// after flush() in the online loop. No-op when not persistent.
  void checkpoint(std::string watch_state = {},
                  std::uint64_t journal_events = 0);

  /// Simulate a kill: abandon queued WAL records and stop persisting. The
  /// store stays usable in memory; the replay-determinism test recovers a
  /// fresh store from the same data_dir afterwards.
  void crash_for_testing();

  /// Bench/test introspection; all zero when not persistent.
  std::uint64_t wal_records_written() const;
  std::uint64_t wal_bytes_written() const;
  std::size_t segment_count() const;
  std::uint64_t compactions() const;

 private:
  std::size_t shard_index(const MetricId& id) const;
  StoreShard& shard(const MetricId& id) { return *shards_[shard_index(id)]; }
  const StoreShard& shard(const MetricId& id) const {
    return *shards_[shard_index(id)];
  }

  /// append()/replay() body: upsert + dirty tracking + notification. The
  /// WAL record is append()'s job; replay's records are already on disk.
  void append_impl(const MetricId& id, MinuteTime t, double value);

  /// Cold-mode scratch materialization (segments + hot tail); false when
  /// the metric exists nowhere.
  bool materialize_cold(const MetricId& id, TimeSeries& out) const;

  /// Snapshot the matching subscriptions for one sample and run their
  /// callbacks with no locks held. Runs on the producer thread (sync) or
  /// the dispatcher thread (async).
  void deliver(const Sample& s) const;

  std::vector<std::unique_ptr<StoreShard>> shards_;

  mutable std::mutex sub_index_mutex_;  ///< guards sub_index_ and next_sub_
  std::map<SubscriptionId, std::shared_ptr<Subscription>> sub_index_;
  SubscriptionId next_sub_ = 1;
  std::atomic<std::size_t> sub_count_{0};

  std::atomic<const obs::Registry*> stats_{nullptr};
  std::unique_ptr<IngestDispatcher> dispatcher_;  ///< null in sync mode

  std::unique_ptr<persist::PersistBackend> backend_;  ///< null = in-memory
  bool cold_ = false;  ///< StoreOptions::cold_reads (persistent only)
};

}  // namespace funnel::tsdb
