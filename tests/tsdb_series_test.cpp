// Tests for the 1-minute-binned TimeSeries and aggregation.
#include "tsdb/series.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace funnel::tsdb {
namespace {

TEST(TimeSeries, StartEndAndAppend) {
  TimeSeries s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.start_time(), 100);
  EXPECT_EQ(s.end_time(), 100);
  s.append(1.0);
  s.append(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.end_time(), 102);
  EXPECT_DOUBLE_EQ(s.at(100), 1.0);
  EXPECT_DOUBLE_EQ(s.at(101), 2.0);
}

TEST(TimeSeries, AtValidatesRange) {
  TimeSeries s(10, {1.0, 2.0});
  EXPECT_THROW((void)s.at(9), InvalidArgument);
  EXPECT_THROW((void)s.at(12), InvalidArgument);
  EXPECT_TRUE(s.contains(11));
  EXPECT_FALSE(s.contains(12));
}

TEST(TimeSeries, AppendAtFillsGapsWithNan) {
  TimeSeries s(0);
  s.append_at(0, 1.0);
  s.append_at(3, 2.0);  // minutes 1, 2 become NaN
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(std::isnan(s.at(1)));
  EXPECT_TRUE(std::isnan(s.at(2)));
  EXPECT_DOUBLE_EQ(s.at(3), 2.0);
}

TEST(TimeSeries, AppendAtRejectsPast) {
  TimeSeries s(0);
  s.append_at(0, 1.0);
  s.append_at(1, 2.0);
  EXPECT_THROW(s.append_at(1, 3.0), InvalidArgument);
  EXPECT_THROW(s.append_at(0, 3.0), InvalidArgument);
}

TEST(TimeSeries, FirstExplicitAppendDefinesStart) {
  TimeSeries s(0);
  s.append_at(500, 9.0);
  EXPECT_EQ(s.start_time(), 500);
  EXPECT_DOUBLE_EQ(s.at(500), 9.0);
}

TEST(TimeSeries, ViewAndSlice) {
  TimeSeries s(10, {1.0, 2.0, 3.0, 4.0});
  const auto v = s.view(11, 13);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  EXPECT_EQ(s.slice(10, 14), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW((void)s.view(9, 12), InvalidArgument);
  EXPECT_THROW((void)s.view(12, 15), InvalidArgument);
  EXPECT_TRUE(s.slice(12, 12).empty());
}

TEST(TimeSeries, CoversAndClean) {
  TimeSeries s(0, {1.0, std::nan(""), 3.0});
  EXPECT_TRUE(s.covers(0, 3));
  EXPECT_FALSE(s.covers(0, 4));
  EXPECT_TRUE(s.clean(0, 1));
  EXPECT_FALSE(s.clean(0, 2));
  EXPECT_TRUE(s.clean(2, 3));
  EXPECT_FALSE(s.clean(0, 4));  // not covered
}

TEST(AggregateMean, AveragesOverlappingSeries) {
  const TimeSeries a(0, {1.0, 2.0, 3.0});
  const TimeSeries b(0, {3.0, 4.0, 5.0});
  const std::vector<const TimeSeries*> parts{&a, &b};
  const TimeSeries m = aggregate_mean(parts, 0, 3);
  EXPECT_DOUBLE_EQ(m.at(0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2), 4.0);
}

TEST(AggregateMean, SkipsMissingMinutesAndNan) {
  const TimeSeries a(0, {1.0, std::nan(""), 3.0});
  const TimeSeries b(1, {10.0, 20.0});  // covers minutes 1, 2
  const std::vector<const TimeSeries*> parts{&a, &b};
  const TimeSeries m = aggregate_mean(parts, 0, 4);
  EXPECT_DOUBLE_EQ(m.at(0), 1.0);    // only a
  EXPECT_DOUBLE_EQ(m.at(1), 10.0);   // a is NaN here
  EXPECT_DOUBLE_EQ(m.at(2), 11.5);   // both
  EXPECT_TRUE(std::isnan(m.at(3)));  // nobody
}

TEST(AggregateMean, NullPointersIgnored) {
  const TimeSeries a(0, {2.0});
  const std::vector<const TimeSeries*> parts{nullptr, &a};
  const TimeSeries m = aggregate_mean(parts, 0, 1);
  EXPECT_DOUBLE_EQ(m.at(0), 2.0);
}

TEST(AggregateMean, EmptyInputsProduceNan) {
  const std::vector<const TimeSeries*> parts;
  const TimeSeries m = aggregate_mean(parts, 5, 7);
  EXPECT_EQ(m.start_time(), 5);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(std::isnan(m.at(5)));
  EXPECT_THROW((void)aggregate_mean(parts, 7, 5), InvalidArgument);
}

}  // namespace
}  // namespace funnel::tsdb
