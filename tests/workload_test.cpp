// Tests for the synthetic KPI generators, effect injectors, shared shocks
// and stream composition.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "tsdb/store.h"
#include "workload/effects.h"
#include "workload/generators.h"
#include "workload/shock.h"
#include "workload/stream.h"

namespace funnel::workload {
namespace {

std::vector<double> sample_range(KpiGenerator& g, MinuteTime t0,
                                 MinuteTime t1) {
  std::vector<double> out;
  for (MinuteTime t = t0; t < t1; ++t) out.push_back(g.sample(t));
  return out;
}

TEST(SeasonalGenerator, DailyPatternRepeats) {
  SeasonalParams p;
  p.noise_sigma = 0.0;
  p.weekly_amplitude = 0.0;
  auto g = make_seasonal(p, Rng(1));
  EXPECT_EQ(g->kpi_class(), tsdb::KpiClass::kSeasonal);
  // Noise-free daily signal is 1440-periodic.
  for (MinuteTime t : {0, 100, 720, 1000}) {
    EXPECT_NEAR(g->sample(t), g->sample(t + kMinutesPerDay), 1e-9);
  }
}

TEST(SeasonalGenerator, AmplitudeIsVisible) {
  SeasonalParams p;
  p.base = 100.0;
  p.daily_amplitude = 40.0;
  p.noise_sigma = 0.5;
  auto g = make_seasonal(p, Rng(2));
  const std::vector<double> day = sample_range(*g, 0, kMinutesPerDay);
  EXPECT_GT(max_value(day) - min_value(day), 60.0);
  EXPECT_NEAR(mean(day), 100.0, 5.0);
}

TEST(StationaryGenerator, MeanAndSpread) {
  StationaryParams p;
  p.level = 50.0;
  p.noise_sigma = 1.0;
  auto g = make_stationary(p, Rng(3));
  EXPECT_EQ(g->kpi_class(), tsdb::KpiClass::kStationary);
  const std::vector<double> xs = sample_range(*g, 0, 5000);
  EXPECT_NEAR(mean(xs), 50.0, 0.1);
  EXPECT_NEAR(stddev(xs), 1.0, 0.1);
}

TEST(VariableGenerator, IsAutocorrelated) {
  VariableParams p;
  p.ar_coefficient = 0.8;
  p.burst_sigma = 10.0;
  p.spike_rate = 0.0;  // isolate the AR component
  auto g = make_variable(p, Rng(4));
  EXPECT_EQ(g->kpi_class(), tsdb::KpiClass::kVariable);
  const std::vector<double> xs = sample_range(*g, 0, 20000);
  std::vector<double> a(xs.begin(), xs.end() - 1);
  std::vector<double> b(xs.begin() + 1, xs.end());
  EXPECT_GT(correlation(a, b), 0.7);
}

TEST(VariableGenerator, ProducesSpikes) {
  VariableParams p;
  p.ar_coefficient = 0.5;
  p.burst_sigma = 5.0;
  p.spike_rate = 0.02;
  p.spike_scale = 100.0;
  auto g = make_variable(p, Rng(4));
  const std::vector<double> xs = sample_range(*g, 0, 20000);
  const double marginal = 5.0 / std::sqrt(1.0 - 0.25);
  int extreme = 0;
  for (double x : xs) {
    if (std::abs(x - 200.0) > 8.0 * marginal) ++extreme;
  }
  EXPECT_GT(extreme, 10);
}

TEST(VariableGenerator, RejectsBadArCoefficient) {
  VariableParams p;
  p.ar_coefficient = 1.0;
  EXPECT_THROW((void)make_variable(p, Rng(5)), InvalidArgument);
}

TEST(Generators, DefaultFactoryMatchesClass) {
  for (auto cls : {tsdb::KpiClass::kSeasonal, tsdb::KpiClass::kStationary,
                   tsdb::KpiClass::kVariable}) {
    EXPECT_EQ(make_default(cls, Rng(6))->kpi_class(), cls);
  }
}

TEST(Generators, SameSeedReproduces) {
  auto a = make_default(tsdb::KpiClass::kVariable, Rng(7));
  auto b = make_default(tsdb::KpiClass::kVariable, Rng(7));
  for (MinuteTime t = 0; t < 100; ++t) {
    EXPECT_DOUBLE_EQ(a->sample(t), b->sample(t));
  }
}

TEST(Effects, LevelShiftStep) {
  const Effect e = LevelShift{100, 5.0};
  EXPECT_DOUBLE_EQ(effect_value(e, 99), 0.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 100), 5.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 10000), 5.0);
  EXPECT_EQ(effect_start(e), 100);
  EXPECT_TRUE(is_persistent(e));
}

TEST(Effects, RampInterpolatesLinearly) {
  const Effect e = Ramp{100, 120, 10.0};
  EXPECT_DOUBLE_EQ(effect_value(e, 99), 0.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 100), 0.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 110), 5.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 120), 10.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 500), 10.0);
  EXPECT_TRUE(is_persistent(e));
}

TEST(Effects, DegenerateRampActsAsShift) {
  const Effect e = Ramp{100, 100, 3.0};
  EXPECT_DOUBLE_EQ(effect_value(e, 100), 3.0);
}

TEST(Effects, TransientSpikeReturnsToBaseline) {
  const Effect e = TransientSpike{100, 3, -4.0};
  EXPECT_DOUBLE_EQ(effect_value(e, 99), 0.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 100), -4.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 102), -4.0);
  EXPECT_DOUBLE_EQ(effect_value(e, 103), 0.0);
  EXPECT_FALSE(is_persistent(e));
}

TEST(EffectTimeline, SumsContributions) {
  EffectTimeline tl;
  tl.add(LevelShift{10, 2.0});
  tl.add(Ramp{10, 20, 10.0});
  EXPECT_DOUBLE_EQ(tl.value_at(9), 0.0);
  EXPECT_DOUBLE_EQ(tl.value_at(15), 2.0 + 5.0);
  EXPECT_DOUBLE_EQ(tl.value_at(100), 12.0);
  EXPECT_EQ(tl.effects().size(), 2u);
}

TEST(Shocks, EventShockShape) {
  const SharedShock s = make_event_shock(100, 10, 8.0);
  EXPECT_DOUBLE_EQ(s->value_at(99), 0.0);
  EXPECT_DOUBLE_EQ(s->value_at(110), 0.0);
  EXPECT_NEAR(s->value_at(105), 8.0, 0.5);  // peak mid-bump
  EXPECT_GE(s->value_at(101), 0.0);
  EXPECT_EQ(s->start(), 100);
  EXPECT_EQ(s->end(), 110);
}

TEST(Shocks, AttackShockSustained) {
  const SharedShock s = make_attack_shock(0, 50, 10.0, Rng(8));
  for (MinuteTime t = 0; t < 50; ++t) {
    EXPECT_GE(s->value_at(t), 8.0 - 1e-9);
    EXPECT_LE(s->value_at(t), 12.0 + 1e-9);
  }
  EXPECT_DOUBLE_EQ(s->value_at(50), 0.0);
}

TEST(Shocks, DriftIsCumulative) {
  const SharedShock s = make_drift_shock(0, 1000, 1.0, Rng(9));
  // A random walk wanders: end magnitude typically >> step sigma.
  double m = 0.0;
  for (MinuteTime t = 0; t < 1000; ++t) {
    m = std::max(m, std::abs(s->value_at(t)));
  }
  EXPECT_GT(m, 5.0);
  EXPECT_THROW((void)make_event_shock(0, 0, 1.0), InvalidArgument);
}

TEST(KpiStream, ComposesGeneratorEffectsAndShocks) {
  StationaryParams p;
  p.level = 10.0;
  p.noise_sigma = 0.0;
  KpiStream s(make_stationary(p, Rng(10)));
  s.add_effect(LevelShift{5, 3.0});
  s.add_shock(make_event_shock(100, 10, 4.0));
  EXPECT_DOUBLE_EQ(s.sample(0), 10.0);
  EXPECT_DOUBLE_EQ(s.sample(5), 13.0);
  EXPECT_NEAR(s.sample(105), 13.0 + 4.0, 0.5);
  EXPECT_EQ(s.kpi_class(), tsdb::KpiClass::kStationary);
}

TEST(KpiStream, SharedShockIdenticalAcrossStreams) {
  // The same SharedShock on two streams contributes identically — the
  // common-mode property the DiD step relies on.
  StationaryParams p;
  p.noise_sigma = 0.0;
  const SharedShock shock = make_attack_shock(10, 20, 6.0, Rng(11));
  KpiStream a(make_stationary(p, Rng(12)));
  KpiStream b(make_stationary(p, Rng(13)));
  a.add_shock(shock);
  b.add_shock(shock);
  for (MinuteTime t = 0; t < 40; ++t) {
    EXPECT_DOUBLE_EQ(a.sample(t), b.sample(t));
  }
}

TEST(KpiStream, RejectsNulls) {
  EXPECT_THROW(KpiStream(nullptr), InvalidArgument);
  KpiStream s(make_default(tsdb::KpiClass::kStationary, Rng(14)));
  EXPECT_THROW(s.add_shock(nullptr), InvalidArgument);
}

TEST(Materialize, FillsStoreRange) {
  KpiStream s(make_default(tsdb::KpiClass::kStationary, Rng(15)));
  tsdb::MetricStore store;
  const tsdb::MetricId id = tsdb::server_metric("h", "mem");
  materialize(s, store, id, 100, 160);
  const tsdb::TimeSeries& ts = store.series(id);
  EXPECT_EQ(ts.start_time(), 100);
  EXPECT_EQ(ts.size(), 60u);
  EXPECT_TRUE(ts.clean(100, 160));
}

TEST(Render, ProducesRequestedLength) {
  KpiStream s(make_default(tsdb::KpiClass::kSeasonal, Rng(16)));
  EXPECT_EQ(render(s, 0, 100).size(), 100u);
  EXPECT_TRUE(render(s, 5, 5).empty());
  EXPECT_THROW((void)render(s, 5, 4), InvalidArgument);
}

}  // namespace
}  // namespace funnel::workload
