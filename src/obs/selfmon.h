// Self-surveillance — the funnel watches itself.
//
// The paper's pitch is *rapid* assessment; DeCaf (arXiv:1910.05339) adds
// the operational corollary: the assessment pipeline is itself a service
// whose degradation must be detected with the same rigor as a customer
// regression. This subsystem closes that loop. A SelfMonitor samples the
// pipeline's own telemetry — ingest dispatch lag, MPSC queue depths, SST
// µs/window, WAL commit latency, journal backlog, time-to-verdict — once
// per tick out of the live obs::Registry into a dedicated in-memory
// tsdb::MetricStore under the reserved `__funnel_self/` topology, and runs
// the SAME online detectors (IKA-SST + the persistence alarm policy,
// detect/sliding.h) over those KPI series. When the funnel's own queue
// depth ramps or its scoring latency steps, the alarm carries provenance
// like any other verdict: a `__funnel_self/` JournalEvent with cause
// "pipeline-degradation" lands in the verdict journal, and /healthz
// (obs/plane.h) flips unhealthy.
//
// Two layers of health, deliberately different in latency:
//   * evaluate_health(): instantaneous per-subsystem threshold checks on a
//     fresh snapshot (dispatcher queue fraction, WAL writer backlog,
//     journal writer backlog, compaction backlog). This is what /healthz
//     serves per request — a stall shows up on the next scrape.
//   * the detector loop: trend/step detection over the sampled KPI series,
//     gated by the same W-window + persistence rule as customer KPIs, so a
//     slow ramp that never crosses a static threshold still alarms — and is
//     journaled with SST evidence.
//
// The `__funnel_self` entity name is reserved: ingest topologies must not
// use it (docs/OBSERVABILITY.md). Everything here is a side channel —
// assessment reports stay byte-identical with selfmon on or off — and the
// FUNNEL_OBS=OFF build reduces it to no-ops (empty snapshots, start()
// refuses), with no #ifdef in callers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/minute_time.h"
#include "detect/sliding.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "tsdb/store.h"

namespace funnel::obs {

/// Reserved self-surveillance entity: selfmon KPIs are stored as
/// service:__funnel_self/<kpi> and journaled with service "__funnel_self".
inline constexpr const char* kSelfEntity = "__funnel_self";

struct SelfMonitorOptions {
  /// Background sampling cadence (start()); tick() can also be driven
  /// manually for deterministic tests.
  std::chrono::milliseconds tick_period{1000};

  /// Detector geometry over the per-tick KPI series. omega 5 (W = 18) is
  /// the paper's fast-mitigation setting: 18 ticks of context before the
  /// first score, small enough to catch a stall within a scrape interval
  /// or two at 1 s ticks.
  std::size_t omega = 5;

  /// Alarm policy over the KPI scores. Slightly tighter persistence than
  /// the customer-KPI default (5 vs 7): selfmon KPIs are mechanical
  /// (queue fractions, latencies), not user behavior, so the seasonality
  /// false-positive pressure the 7-minute rule guards against is absent.
  detect::AlarmPolicy alarm{.threshold = 0.35, .persistence = 5,
                            .patience = 7};

  /// evaluate_health(): a bounded MPSC queue at or above this fraction of
  /// its capacity fails its subsystem check.
  double unhealthy_queue_frac = 0.95;

  /// evaluate_health(): fail the compaction check when the live segment
  /// count exceeds this (the background compactor is falling behind).
  /// 0 disables the check.
  std::size_t compact_backlog_max = 16;

  /// A detector alarm keeps the "selfmon" health check failing for this
  /// many ticks after it fires (detectors re-arm immediately; health
  /// latches long enough for a scraper to see it).
  std::size_t alarm_hold_ticks = 30;
};

/// One per-subsystem health probe result.
struct HealthCheck {
  std::string name;    ///< "ingest-dispatcher", "wal-writer", ...
  bool ok = true;
  std::string detail;  ///< human-readable evidence, e.g. "queue 512/1024"
};

struct HealthReport {
  bool healthy = true;
  std::vector<HealthCheck> checks;

  /// "healthy\n" / "unhealthy\n" followed by one "ok|FAIL <name> <detail>"
  /// line per check — the /healthz body.
  std::string render() const;
};

/// Instantaneous per-subsystem checks over a registry snapshot: ingest
/// dispatcher queue fraction, WAL writer backlog, journal writer backlog,
/// compaction backlog. Subsystems whose stats are absent (sync dispatch, no
/// persistence, no journal) pass with detail "n/a" — absence of a subsystem
/// is not a failure. Pure function of the snapshot; usable without a
/// SelfMonitor (the plane's /healthz falls back to it when selfmon is off).
HealthReport evaluate_health(const Snapshot& snap,
                             const SelfMonitorOptions& options = {});

/// The self-surveillance loop. Construction wires the KPI set and
/// detectors; drive it either with start()/stop() (background thread,
/// tick_period cadence) or manual tick() calls (tests, single-threaded
/// harnesses). All public methods are thread-safe.
class SelfMonitor {
 public:
  /// `watched` is the registry the pipeline records into (null = selfmon
  /// inert: ticks sample nothing, health reports healthy). It must outlive
  /// this monitor.
  explicit SelfMonitor(const Registry* watched,
                       SelfMonitorOptions options = {});
  ~SelfMonitor();

  SelfMonitor(const SelfMonitor&) = delete;
  SelfMonitor& operator=(const SelfMonitor&) = delete;

  /// Attach the verdict journal degradation events are appended to (null
  /// detaches). The journal must outlive this monitor.
  void set_journal(const Journal* journal);

  /// Sample one tick now: read the watched registry, append one sample per
  /// KPI to the `__funnel_self/` store, feed the detectors, journal any
  /// alarm. Safe from any thread (serialized internally); a no-op when the
  /// build is FUNNEL_OBS=OFF or `watched` is null.
  void tick();

  /// Start the background sampling thread. False when already running or
  /// when ticking would be a no-op (OFF build / null registry).
  bool start();

  /// Stop and join the background thread (idempotent; also run by the
  /// destructor). Manual tick() remains usable afterwards.
  void stop();

  bool running() const;

  /// Health = instantaneous evaluate_health() on the watched registry plus
  /// the "selfmon" check (recent detector alarms).
  HealthReport health() const;

  /// KPI names sampled each tick (fixed at construction; each is stored as
  /// service:__funnel_self/<name>).
  const std::vector<std::string>& kpis() const;

  /// The self-surveillance store: one series per KPI, minute == tick
  /// index. Quiesce ticking (stop(), or no concurrent tick()) before
  /// unlocked reads, per the MetricStore contract.
  const tsdb::MetricStore& store() const;

  std::uint64_t ticks() const;
  std::uint64_t alarms_raised() const;

 private:
  struct Kpi;

  void tick_locked();
  void on_alarm_locked(Kpi& kpi, const detect::Alarm& alarm);

  const Registry* watched_;
  SelfMonitorOptions options_;
  const Journal* journal_ = nullptr;

  mutable std::mutex mutex_;  ///< serializes tick state + alarm bookkeeping
  tsdb::MetricStore store_;
  std::vector<std::unique_ptr<Kpi>> kpis_;
  std::vector<std::string> kpi_names_;
  std::uint64_t tick_count_ = 0;
  std::uint64_t alarms_ = 0;

  // Background driver.
  mutable std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  bool thread_running_ = false;
};

}  // namespace funnel::obs
