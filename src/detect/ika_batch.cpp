#include "detect/ika_batch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "detect/sst_common.h"
#include "detect/sst_internal.h"
#include "linalg/hankel.h"

namespace funnel::detect {
namespace {

// Run `iterations` Rayleigh-Ritz power sweeps for every lane in `group`
// over its standardized half, with the Gram applies of all lanes fused
// into one BatchHankelGram pass per sweep. `halves[g]` is lane g's
// standardized half (2ω−1 samples — exactly the Hankel span for count=ω),
// `bases[g]` its persisted basis. Returns per-lane Ritz values.
//
// The interleave/deinterleave steps are pure data movement and the
// per-lane math is internal::ritz_rotate — the same helper IkaSst's fast
// path runs — so each lane's result is bit-identical to iterating it alone.
struct RitzResidual {
  double res2 = 0.0;
  double scale = 0.0;  ///< leading Rayleigh quotient
};

std::vector<linalg::Vector> batch_ritz(
    const std::vector<std::span<const double>>& halves,
    const std::vector<linalg::Matrix*>& bases, int iterations,
    std::size_t omega, std::size_t eta,
    std::vector<RitzResidual>* residuals = nullptr) {
  const std::size_t g_count = halves.size();
  std::vector<linalg::Vector> lambdas(g_count, linalg::Vector(eta, 0.0));
  if (residuals != nullptr) residuals->assign(g_count, RitzResidual{});
  if (g_count == 0) return lambdas;

  const std::size_t span = linalg::hankel_span(omega, omega);
  linalg::Vector windows(span * g_count);
  for (std::size_t g = 0; g < g_count; ++g) {
    for (std::size_t i = 0; i < span; ++i) {
      windows[i * g_count + g] = halves[g][i];
    }
  }
  const linalg::BatchHankelGram op(windows, g_count, omega, omega);

  linalg::Vector x(omega * eta * g_count), y(omega * eta * g_count);
  linalg::Vector scratch(omega * eta * g_count);
  linalg::Matrix ylane(omega, eta);
  const auto pack = [&] {
    for (std::size_t g = 0; g < g_count; ++g) {
      const linalg::Matrix& b = *bases[g];
      for (std::size_t i = 0; i < omega; ++i) {
        for (std::size_t c = 0; c < eta; ++c) {
          x[(i * eta + c) * g_count + g] = b(i, c);
        }
      }
    }
  };
  const auto unpack_lane = [&](std::size_t g) {
    for (std::size_t i = 0; i < omega; ++i) {
      for (std::size_t c = 0; c < eta; ++c) {
        ylane(i, c) = y[(i * eta + c) * g_count + g];
      }
    }
  };
  for (int it = 0; it < iterations; ++it) {
    pack();
    op.apply_block(x, y, eta, scratch);
    for (std::size_t g = 0; g < g_count; ++g) {
      unpack_lane(g);
      lambdas[g] = internal::ritz_rotate(*bases[g], ylane);
    }
  }
  // Ritz residual against the final bases — one more fused apply, fed
  // through the same per-lane helper the scalar path uses.
  if (residuals != nullptr) {
    pack();
    op.apply_block(x, y, eta, scratch);
    for (std::size_t g = 0; g < g_count; ++g) {
      unpack_lane(g);
      (*residuals)[g].res2 =
          internal::ritz_residual2(*bases[g], ylane, (*residuals)[g].scale);
    }
  }
  return lambdas;
}

}  // namespace

IkaSstBatch::IkaSstBatch(std::size_t kpis, SstGeometry geometry,
                         IkaParams params)
    : geo_(geometry), params_(params), lanes_(kpis) {
  FUNNEL_REQUIRE(kpis >= 1, "IkaSstBatch needs at least one lane");
  params_.warm_past = true;
  // Same invariants IkaSst enforces.
  FUNNEL_REQUIRE(geo_.omega >= 2, "SST needs omega >= 2");
  FUNNEL_REQUIRE(geo_.eta >= 1 && geo_.eta < geo_.omega,
                 "SST needs 1 <= eta < omega");
  FUNNEL_REQUIRE(params_.cold_iterations >= 1 && params_.warm_iterations >= 1,
                 "iteration counts must be positive");
  FUNNEL_REQUIRE(params_.restart_period >= 1,
                 "restart period must be positive");
}

void IkaSstBatch::reset() {
  for (Lane& lane : lanes_) lane = Lane{};
}

void IkaSstBatch::score_all(std::span<const double> windows,
                            std::span<double> out) {
  const std::size_t w = geo_.window();
  const std::size_t k = lanes_.size();
  FUNNEL_REQUIRE(windows.size() == k * w, "IkaSstBatch window size mismatch");
  FUNNEL_REQUIRE(out.size() >= k, "IkaSstBatch output too small");

  // Standardize every lane; dirty lanes score NaN and keep their state.
  std::vector<std::vector<double>> z(k);
  std::vector<std::size_t> active;
  active.reserve(k);
  for (std::size_t lane = 0; lane < k; ++lane) {
    z[lane] = standardize_window(windows.subspan(lane * w, w), geo_.half());
    if (z[lane].empty()) {
      out[lane] = std::numeric_limits<double>::quiet_NaN();
    } else {
      active.push_back(lane);
    }
  }

  // Eq. 11 damping factor per lane — reused for the final score and as the
  // escalation gate (factor == 0 ⟹ the lane scores 0 whatever the basis
  // quality, so warm drift there is exactly zero; same gate as IkaSst).
  std::vector<double> factor(k, 0.0);
  for (std::size_t lane : active) {
    const std::span<const double> zl(z[lane]);
    factor[lane] = robust_score_factor(zl.subspan(0, geo_.half()),
                                       zl.subspan(geo_.half(), geo_.half()));
  }

  // Restart policy per lane, then partition into cold and warm groups so
  // every lane in a group runs the same number of sweeps (a requirement
  // for fusing their applies — and for bit-identity with IkaSst).
  std::vector<std::size_t> cold, warm;
  for (std::size_t lane : active) {
    Lane& st = lanes_[lane];
    if (st.windows_since_restart >= params_.restart_period) {
      st.warm = false;
      st.windows_since_restart = 0;
    }
    ++st.windows_since_restart;
    (st.warm ? warm : cold).push_back(lane);
  }

  std::vector<linalg::Vector> lambdas(k), mus(k);

  // One fused batch_ritz over `group` for the chosen half (futures or
  // pasts), seeding first when `seed` is set, writing results into
  // lambdas/mus. Per-lane arithmetic is the same helpers IkaSst runs, so
  // each lane stays bit-identical to a standalone scorer.
  const auto run_group = [&](const std::vector<std::size_t>& group,
                             bool future_half, bool seed, int iters,
                             std::vector<RitzResidual>* residuals) {
    if (group.empty()) {
      if (residuals != nullptr) residuals->clear();
      return;
    }
    std::vector<std::span<const double>> halves;
    std::vector<linalg::Matrix*> bases;
    for (std::size_t lane : group) {
      Lane& st = lanes_[lane];
      const std::span<const double> zl(z[lane]);
      const auto half = future_half ? zl.subspan(geo_.half(), geo_.half())
                                    : zl.subspan(0, geo_.half());
      linalg::Matrix& basis = future_half ? st.future_basis : st.past_basis;
      if (seed) internal::seed_basis(basis, half, geo_.omega, geo_.eta);
      halves.push_back(half);
      bases.push_back(&basis);
    }
    const auto lam =
        batch_ritz(halves, bases, iters, geo_.omega, geo_.eta, residuals);
    for (std::size_t g = 0; g < group.size(); ++g) {
      (future_half ? lambdas : mus)[group[g]] = lam[g];
    }
  };

  // Warm lanes first: warm sweeps + residual check; lanes whose basis lost
  // the subspace escalate and join the cold group for a full re-seed —
  // the identical decision the scalar fast path makes per window.
  for (const bool future_half : {true, false}) {
    std::vector<std::size_t> cold_group = cold;
    std::vector<RitzResidual> res;
    run_group(warm, future_half, /*seed=*/false, params_.warm_iterations,
              &res);
    for (std::size_t g = 0; g < warm.size(); ++g) {
      if (factor[warm[g]] > 0.0 &&
          internal::needs_escalation(res[g].res2, res[g].scale,
                                     params_.warm_residual_tol)) {
        cold_group.push_back(warm[g]);
      }
    }
    run_group(cold_group, future_half, /*seed=*/true, params_.cold_iterations,
              nullptr);
  }
  for (std::size_t lane : active) lanes_[lane].warm = true;

  for (std::size_t lane : active) {
    const Lane& st = lanes_[lane];
    double weighted = 0.0, total_weight = 0.0;
    internal::accumulate_fast_score(lambdas[lane], st.future_basis, mus[lane],
                                    st.past_basis, geo_.eta, weighted,
                                    total_weight);
    if (total_weight <= 0.0) {
      out[lane] = 0.0;
      continue;
    }
    const double xhat =
        std::max(weighted / total_weight, geo_.novelty_floor);
    out[lane] = xhat * factor[lane];  // Eq. 11
  }
}

}  // namespace funnel::detect
