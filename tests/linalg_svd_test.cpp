// Tests for the one-sided Jacobi SVD.
#include "linalg/svd.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace funnel::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.gaussian();
  }
  return m;
}

void expect_orthonormal_columns(const Matrix& m, double tol = 1e-10) {
  for (std::size_t a = 0; a < m.cols(); ++a) {
    const Vector ca = m.col(a);
    const double na = norm2(ca);
    if (na < 0.5) continue;  // zero column for a null singular value
    for (std::size_t b = a; b < m.cols(); ++b) {
      const Vector cb = m.col(b);
      if (norm2(cb) < 0.5) continue;
      const double expected = a == b ? 1.0 : 0.0;
      EXPECT_NEAR(dot(ca, cb), expected, tol) << "columns " << a << "," << b;
    }
  }
}

TEST(JacobiSvd, DiagonalMatrix) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  const Svd s = jacobi_svd(a);
  ASSERT_EQ(s.singular_values.size(), 2u);
  EXPECT_NEAR(s.singular_values[0], 4.0, 1e-12);
  EXPECT_NEAR(s.singular_values[1], 3.0, 1e-12);
}

TEST(JacobiSvd, KnownRankOne) {
  // a = u * vᵀ with u = (1,2)ᵀ, v = (3,4)ᵀ: sigma_1 = |u||v| = sqrt(5)*5.
  const Matrix a{{3.0, 4.0}, {6.0, 8.0}};
  const Svd s = jacobi_svd(a);
  EXPECT_NEAR(s.singular_values[0], std::sqrt(5.0) * 5.0, 1e-10);
  EXPECT_NEAR(s.singular_values[1], 0.0, 1e-10);
}

TEST(JacobiSvd, SingularValuesSortedDescending) {
  Rng rng(3);
  const Svd s = jacobi_svd(random_matrix(8, 6, rng));
  for (std::size_t i = 1; i < s.singular_values.size(); ++i) {
    EXPECT_GE(s.singular_values[i - 1], s.singular_values[i]);
  }
}

TEST(JacobiSvd, EmptyThrows) {
  EXPECT_THROW((void)jacobi_svd(Matrix{}), InvalidArgument);
}

TEST(JacobiSvd, ZeroMatrix) {
  const Svd s = jacobi_svd(Matrix(3, 3));
  for (double v : s.singular_values) EXPECT_DOUBLE_EQ(v, 0.0);
}

// Property sweep over shapes: A == U S Vᵀ, factors orthonormal, and the
// singular values match the eigenvalues of AᵀA.
class SvdReconstruction
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvdReconstruction, ReconstructsAndIsOrthonormal) {
  const auto [r, c] = GetParam();
  Rng rng(static_cast<std::uint64_t>(r * 31 + c));
  const Matrix a = random_matrix(static_cast<std::size_t>(r),
                                 static_cast<std::size_t>(c), rng);
  const Svd s = jacobi_svd(a);
  EXPECT_EQ(s.singular_values.size(),
            std::min(a.rows(), a.cols()));
  EXPECT_LT(max_abs_difference(reconstruct(s), a), 1e-9);
  expect_orthonormal_columns(s.u);
  expect_orthonormal_columns(s.v);
  for (double v : s.singular_values) EXPECT_GE(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdReconstruction,
    ::testing::Values(std::tuple{1, 1}, std::tuple{2, 2}, std::tuple{5, 3},
                      std::tuple{3, 5}, std::tuple{9, 9}, std::tuple{17, 9},
                      std::tuple{9, 17}, std::tuple{32, 8}));

TEST(JacobiSvd, RankDeficientReconstruction) {
  // Rank-2 4x4 matrix built from two outer products.
  Rng rng(11);
  Matrix a(4, 4);
  for (int rep = 0; rep < 2; ++rep) {
    Vector u(4), v(4);
    for (auto& x : u) x = rng.gaussian();
    for (auto& x : v) x = rng.gaussian();
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) a(i, j) += u[i] * v[j];
    }
  }
  const Svd s = jacobi_svd(a);
  EXPECT_LT(max_abs_difference(reconstruct(s), a), 1e-9);
  EXPECT_NEAR(s.singular_values[2], 0.0, 1e-9);
  EXPECT_NEAR(s.singular_values[3], 0.0, 1e-9);
}

TEST(JacobiSvd, InvariantUnderScaling) {
  Rng rng(13);
  const Matrix a = random_matrix(6, 4, rng);
  Matrix b = a;
  for (std::size_t i = 0; i < b.data().size(); ++i) b.data()[i] *= 1e6;
  const Svd sa = jacobi_svd(a);
  const Svd sb = jacobi_svd(b);
  for (std::size_t i = 0; i < sa.singular_values.size(); ++i) {
    EXPECT_NEAR(sb.singular_values[i], 1e6 * sa.singular_values[i],
                1e-4 * sb.singular_values[0]);
  }
}

TEST(JacobiSvd, WideMatrixSwapsFactors) {
  Rng rng(17);
  const Matrix a = random_matrix(3, 7, rng);
  const Svd s = jacobi_svd(a);
  EXPECT_EQ(s.u.rows(), 3u);
  EXPECT_EQ(s.v.rows(), 7u);
  EXPECT_LT(max_abs_difference(reconstruct(s), a), 1e-9);
}

TEST(JacobiSvd, FrobeniusNormIdentity) {
  // ||A||_F^2 == sum of squared singular values.
  Rng rng(19);
  const Matrix a = random_matrix(7, 5, rng);
  double fro2 = 0.0;
  for (double v : a.data()) fro2 += v * v;
  const Svd s = jacobi_svd(a);
  double sum2 = 0.0;
  for (double v : s.singular_values) sum2 += v * v;
  EXPECT_NEAR(fro2, sum2, 1e-9 * fro2);
}

}  // namespace
}  // namespace funnel::linalg
