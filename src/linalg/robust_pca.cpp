#include "linalg/robust_pca.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/svd.h"

namespace funnel::linalg {
namespace {

double frobenius(const Matrix& m) {
  double acc = 0.0;
  for (double v : m.data()) acc += v * v;
  return std::sqrt(acc);
}

double max_abs(const Matrix& m) {
  double acc = 0.0;
  for (double v : m.data()) acc = std::max(acc, std::abs(v));
  return acc;
}

// Soft-thresholding (shrinkage) operator applied elementwise.
void shrink(const Matrix& in, double tau, Matrix& out) {
  for (std::size_t i = 0; i < in.data().size(); ++i) {
    const double v = in.data()[i];
    out.data()[i] = std::copysign(std::max(std::abs(v) - tau, 0.0), v);
  }
}

// Singular value thresholding: SVD, shrink the spectrum, reassemble.
Matrix svt(const Matrix& m, double tau) {
  Svd svd = jacobi_svd(m);
  for (double& s : svd.singular_values) {
    s = std::max(s - tau, 0.0);
  }
  return reconstruct(svd);
}

}  // namespace

RobustPcaResult robust_pca(const Matrix& m, RobustPcaOptions options) {
  FUNNEL_REQUIRE(!m.empty(), "robust_pca of empty matrix");
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  const double lambda =
      options.lambda > 0.0
          ? options.lambda
          : 1.0 / std::sqrt(static_cast<double>(std::max(rows, cols)));

  RobustPcaResult result;
  result.low_rank = Matrix(rows, cols);
  result.sparse = Matrix(rows, cols);

  const double fro_m = frobenius(m);
  if (fro_m == 0.0) {
    result.converged = true;
    return result;
  }

  // Standard IALM initialization (Lin et al., Algorithm 5).
  const double spectral = jacobi_svd(m).singular_values[0];
  const double j_norm = std::max(spectral, max_abs(m) / lambda);
  Matrix y = m;
  for (double& v : y.data()) v /= j_norm;
  double mu = 1.25 / (spectral > 0.0 ? spectral : 1.0);
  const double mu_bar = mu * 1e7;
  const double rho = 1.5;

  Matrix work(rows, cols);
  for (int it = 0; it < options.max_iterations; ++it) {
    // L = SVT_{1/mu}(M - S + Y/mu)
    for (std::size_t i = 0; i < work.data().size(); ++i) {
      work.data()[i] =
          m.data()[i] - result.sparse.data()[i] + y.data()[i] / mu;
    }
    result.low_rank = svt(work, 1.0 / mu);

    // S = shrink_{lambda/mu}(M - L + Y/mu)
    for (std::size_t i = 0; i < work.data().size(); ++i) {
      work.data()[i] =
          m.data()[i] - result.low_rank.data()[i] + y.data()[i] / mu;
    }
    shrink(work, lambda / mu, result.sparse);

    // Residual and dual update.
    double res2 = 0.0;
    for (std::size_t i = 0; i < work.data().size(); ++i) {
      const double r =
          m.data()[i] - result.low_rank.data()[i] - result.sparse.data()[i];
      work.data()[i] = r;
      res2 += r * r;
    }
    result.iterations = it + 1;
    if (std::sqrt(res2) <= options.tolerance * fro_m) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < y.data().size(); ++i) {
      y.data()[i] += mu * work.data()[i];
    }
    mu = std::min(mu * rho, mu_bar);
  }
  return result;
}

}  // namespace funnel::linalg
