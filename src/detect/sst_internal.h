// Internal building blocks shared by IkaSst and IkaSstBatch.
//
// The batch scorer's contract is bit-identical per-lane results vs a
// standalone fast-path IkaSst, which only holds if both run literally the
// same per-lane arithmetic in the same order. These helpers are that
// arithmetic; keep them header-inline so there is exactly one definition to
// drift.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "linalg/matrix.h"
#include "linalg/sym_eigen.h"

namespace funnel::detect::internal {

/// Orthonormalize the columns of b in place (modified Gram-Schmidt); columns
/// that collapse to zero are replaced with canonical basis vectors so the
/// block keeps full rank.
inline void orthonormalize(linalg::Matrix& b) {
  const std::size_t n = b.rows();
  for (std::size_t j = 0; j < b.cols(); ++j) {
    linalg::Vector col = b.col(j);
    for (std::size_t k = 0; k < j; ++k) {
      const linalg::Vector prev = b.col(k);
      const double proj = linalg::dot(col, prev);
      for (std::size_t i = 0; i < n; ++i) col[i] -= proj * prev[i];
    }
    if (linalg::normalize(col) <= 1e-12) {
      std::fill(col.begin(), col.end(), 0.0);
      col[j % n] = 1.0;
      for (std::size_t k = 0; k < j; ++k) {
        const linalg::Vector prev = b.col(k);
        const double proj = linalg::dot(col, prev);
        for (std::size_t i = 0; i < n; ++i) col[i] -= proj * prev[i];
      }
      linalg::normalize(col);
    }
    b.set_col(j, col);
  }
}

/// Seed a cold block with lagged windows spread across the half, plus a
/// small perturbation on the first column, then orthonormalize.
inline void seed_basis(linalg::Matrix& basis, std::span<const double> half,
                       std::size_t omega, std::size_t eta) {
  basis = linalg::Matrix(omega, eta);
  for (std::size_t j = 0; j < eta; ++j) {
    const std::size_t offset =
        eta > 1 ? j * (half.size() - omega) / (eta - 1) : 0;
    for (std::size_t i = 0; i < omega; ++i) {
      basis(i, j) = half[offset + i] + (j == 0 ? 1e-3 : 0.0);
    }
  }
  orthonormalize(basis);
}

/// One Rayleigh-Ritz step given Y = C·B: T = Bᵀ Y (eta x eta, symmetric),
/// eigendecompose, B <- orth(Y·Q). Returns the Ritz values (non-increasing
/// estimates of C's leading eigenvalues).
inline linalg::Vector ritz_rotate(linalg::Matrix& basis,
                                  const linalg::Matrix& y) {
  const std::size_t omega = basis.rows();
  const std::size_t eta = basis.cols();
  linalg::Matrix t(eta, eta);
  for (std::size_t a = 0; a < eta; ++a) {
    const linalg::Vector ba = basis.col(a);
    for (std::size_t b = a; b < eta; ++b) {
      const double v = linalg::dot(ba, y.col(b));
      t(a, b) = v;
      t(b, a) = v;
    }
  }
  const linalg::SymEigen te = linalg::sym_eigen(t);
  linalg::Matrix next(omega, eta);
  for (std::size_t j = 0; j < eta; ++j) {
    linalg::Vector col(omega, 0.0);
    for (std::size_t a = 0; a < eta; ++a) {
      const double q = te.vectors(a, j);
      for (std::size_t i = 0; i < omega; ++i) col[i] += y(i, a) * q;
    }
    next.set_col(j, col);
  }
  orthonormalize(next);
  basis = std::move(next);
  return te.values;
}

/// Squared Frobenius residual ||C·B − B·diag(ρ)||² of a Ritz block, given
/// y = C·B for the *updated* basis, with ρc the current Rayleigh quotients
/// bcᵀ·C·bc (not the one-sweep-stale Ritz values). `scale` receives the
/// leading quotient ρ₀ — the natural reference for a relative tolerance.
/// Fixed summation order (columns outer, rows inner) so scalar and batch
/// paths compute the identical double.
inline double ritz_residual2(const linalg::Matrix& basis,
                             const linalg::Matrix& y, double& scale) {
  double res2 = 0.0;
  scale = 0.0;
  for (std::size_t c = 0; c < basis.cols(); ++c) {
    double rho = 0.0;
    for (std::size_t i = 0; i < basis.rows(); ++i) {
      rho += basis(i, c) * y(i, c);
    }
    if (c == 0) scale = rho;
    for (std::size_t i = 0; i < basis.rows(); ++i) {
      const double r = y(i, c) - rho * basis(i, c);
      res2 += r * r;
    }
  }
  return res2;
}

/// Warm-start escalation predicate: the warm sweeps failed to track the
/// subspace when the Ritz residual exceeds `tol` relative to the leading
/// Rayleigh quotient. Windows where this fires re-run the full cold
/// iteration, so warm-start drift is bounded by construction (the
/// escalated window is bit-identical to a cold restart).
inline bool needs_escalation(double res2, double lambda_scale, double tol) {
  const double scale = std::max(lambda_scale, 1e-12);
  return res2 > tol * tol * scale * scale;
}

/// Fast-path Eq. 9 accumulation: for each positive future Ritz value λᵢ,
/// φᵢ = clamp(1 − Σⱼ (βᵢ·uⱼ)², 0, 1) over the positive-μ past directions.
inline void accumulate_fast_score(const linalg::Vector& lambdas,
                                  const linalg::Matrix& future_basis,
                                  const linalg::Vector& mus,
                                  const linalg::Matrix& past_basis,
                                  std::size_t eta, double& weighted,
                                  double& total_weight) {
  for (std::size_t i = 0; i < eta; ++i) {
    const double lambda = std::max(lambdas[i], 0.0);
    if (lambda <= 0.0) break;
    const linalg::Vector beta = future_basis.col(i);
    double proj2 = 0.0;
    for (std::size_t j = 0; j < eta; ++j) {
      if (mus[j] <= 0.0) break;
      const double p = linalg::dot(beta, past_basis.col(j));
      proj2 += p * p;
    }
    const double phi = std::clamp(1.0 - proj2, 0.0, 1.0);
    weighted += lambda * phi;  // Eq. 9
    total_weight += lambda;
  }
}

}  // namespace funnel::detect::internal
