# Smoke check for the SST hot-path benchmark: runs bench/sst_hotpath in
# --quick mode, then validates the BENCH_sst.json it emits — the file must
# parse as JSON, carry every tier (cold/warm/fast/batch/cascaded) with
# us_per_window + cores_for_1m_kpis, the speedup and fidelity blocks, and
# the headline acceptance number: cascaded_vs_cold speedup >= 5.
#
# Invoked by ctest as:
#   cmake -DBENCH=<sst_hotpath> -DWORK_DIR=<scratch dir> -P sst_bench_smoke.cmake

foreach(var BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(json_path "${WORK_DIR}/BENCH_sst.json")

execute_process(
  COMMAND "${BENCH}" --quick --json "${json_path}"
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sst_hotpath failed (${rc}): ${err}")
endif()

file(READ "${json_path}" json)

# Workload block: the bench must say what it measured.
string(JSON workload_class ERROR_VARIABLE jerr GET "${json}" workload class)
if(jerr)
  message(FATAL_ERROR "BENCH_sst.json did not parse: ${jerr}")
endif()
string(JSON windows GET "${json}" workload windows)
if(windows LESS 1)
  message(FATAL_ERROR "workload.windows must be positive, got ${windows}")
endif()

# Every tier must report a positive us_per_window and a core count.
foreach(tier cold warm fast batch cascaded)
  string(JSON us ERROR_VARIABLE jerr GET "${json}" tiers ${tier} us_per_window)
  if(jerr)
    message(FATAL_ERROR "tiers.${tier}.us_per_window missing: ${jerr}")
  endif()
  if(us LESS_EQUAL 0)
    message(FATAL_ERROR "tiers.${tier}.us_per_window must be > 0, got ${us}")
  endif()
  string(JSON cores ERROR_VARIABLE jerr GET "${json}" tiers ${tier} cores_for_1m_kpis)
  if(jerr)
    message(FATAL_ERROR "tiers.${tier}.cores_for_1m_kpis missing: ${jerr}")
  endif()
endforeach()

# Speedup + fidelity blocks.
foreach(key warm_vs_cold fast_vs_cold batch_vs_cold cascaded_vs_cold)
  string(JSON s ERROR_VARIABLE jerr GET "${json}" speedup ${key})
  if(jerr)
    message(FATAL_ERROR "speedup.${key} missing: ${jerr}")
  endif()
endforeach()
string(JSON corr ERROR_VARIABLE jerr GET "${json}" fidelity fast_vs_exact_corr)
if(jerr)
  message(FATAL_ERROR "fidelity.fast_vs_exact_corr missing: ${jerr}")
endif()

# The acceptance bar: the cascaded hot path is at least 5x cheaper per
# window than cold restarts on the Table 2 workload.
string(JSON cascaded_speedup GET "${json}" speedup cascaded_vs_cold)
if(cascaded_speedup LESS 5)
  message(FATAL_ERROR
    "cascaded_vs_cold speedup ${cascaded_speedup} < 5 — hot path regressed")
endif()

message(STATUS "sst_bench_smoke OK: cascaded_vs_cold=${cascaded_speedup}x, "
               "fast_vs_exact_corr=${corr}")
