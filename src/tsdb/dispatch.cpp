#include "tsdb/dispatch.h"

#include <utility>

#include "common/error.h"

namespace funnel::tsdb {

IngestDispatcher::IngestDispatcher(std::size_t capacity, Backpressure policy,
                                   Sink sink)
    : capacity_(capacity), policy_(policy), sink_(std::move(sink)) {
  FUNNEL_REQUIRE(capacity_ >= 1, "ingest queue needs capacity >= 1");
  FUNNEL_REQUIRE(static_cast<bool>(sink_), "ingest dispatcher needs a sink");
  thread_ = std::thread([this] { run(); });
}

IngestDispatcher::~IngestDispatcher() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  arrival_cv_.notify_all();
  space_cv_.notify_all();
  thread_.join();
}

void IngestDispatcher::submit(Sample s) {
  const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
  if (stats != nullptr) s.enqueued = std::chrono::steady_clock::now();
  s.trace_ctx = obs::current_context();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_) {
      if (policy_ == Backpressure::kBlock) {
        space_cv_.wait(lock,
                       [&] { return queue_.size() < capacity_ || stop_; });
      } else {
        queue_.pop_front();
        ++dropped_;
        ++settled_;
        settled_cv_.notify_all();
        if (stats != nullptr) stats->add("tsdb.store.dropped_samples");
      }
    }
    if (stop_) return;  // shutting down: the sample is silently shed
    queue_.push_back(std::move(s));
    ++submitted_;
    if (stats != nullptr) {
      stats->set("tsdb.store.queue_depth",
                 static_cast<double>(queue_.size()));
    }
  }
  arrival_cv_.notify_one();
}

void IngestDispatcher::flush() {
  if (on_dispatcher_thread()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t target = submitted_;
  settled_cv_.wait(lock, [&] { return settled_ >= target; });
}

void IngestDispatcher::await_inflight() {
  if (on_dispatcher_thread()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (!in_sink_) return;
  const std::uint64_t target = settled_ + 1;
  settled_cv_.wait(lock, [&] { return settled_ >= target; });
}

std::uint64_t IngestDispatcher::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t IngestDispatcher::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void IngestDispatcher::run() {
  for (;;) {
    Sample s;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      arrival_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      s = std::move(queue_.front());
      queue_.pop_front();
      in_sink_ = true;
    }
    space_cv_.notify_one();
    const obs::Registry* stats = stats_.load(std::memory_order_relaxed);
    if (stats != nullptr &&
        s.enqueued != std::chrono::steady_clock::time_point{}) {
      stats->observe(
          "tsdb.store.dispatch_lag_us",
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - s.enqueued)
              .count());
    }
    try {
      // Sink runs under the producer's trace context: callback spans link
      // into the submitting append's tree across the thread hop.
      const obs::ScopedContext trace_ctx(s.trace_ctx);
      sink_(s);
    } catch (...) {
      if (stats != nullptr) stats->add("tsdb.store.callback_exceptions");
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      in_sink_ = false;
      ++settled_;
      if (stats != nullptr) {
        stats->set("tsdb.store.queue_depth",
                   static_cast<double>(queue_.size()));
      }
    }
    settled_cv_.notify_all();
  }
}

}  // namespace funnel::tsdb
