// End-to-end smoke for the live telemetry plane behind `funnel_detect_csv
// --serve` (docs/OBSERVABILITY.md "Live endpoints"): launch the real tool
// against a generated KPI with `--http-port auto --port-file --selfmon
// --serve`, wait for the port-file handshake, scrape /healthz, /metrics,
// /stats.json and /tracez over a raw socket, then SIGTERM it and require a
// clean exit 0. Also the failure contracts: a port that is already bound
// must exit 3 with a diagnostic, and SIGTERM must interrupt an unbounded
// --serve promptly.
//
// Under -DFUNNEL_OBS=OFF the plane cannot start; the same invocation must
// exit 3 fast (the "compiled out" contract) — so the test is meaningful in
// both build flavors.
//
// The tool path arrives via -DFUNNEL_DETECT_CSV_PATH from tests/CMakeLists.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "funnel_serve_smoke_" + name;
}

/// 300 minutes of a deterministic noisy level with a +3 step at minute 200
/// — enough for the online pipeline to run; the verdict itself is not what
/// this smoke checks.
std::string write_kpi_csv() {
  const std::string path = temp_path("kpi.csv");
  std::ofstream out(path, std::ios::trunc);
  for (int t = 0; t < 300; ++t) {
    const double ripple = 0.3 * double((t * 7) % 11) / 11.0;
    const double level = t >= 200 ? 13.0 : 10.0;
    out << t << ',' << (level + ripple) << '\n';
  }
  return path;
}

pid_t spawn(const std::vector<std::string>& args, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: both streams onto ONE shared file description (dup2, not two
  // freopens — independent file positions would overwrite each other).
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::_Exit(127);
}

/// Wait for the child with a deadline; SIGKILL + fail past it. Returns the
/// raw waitpid status.
int await_exit(pid_t pid, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ADD_FAILURE() << "child " << pid << " missed the exit deadline";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Poll the --port-file handshake until the tool announces its bound port.
int read_port_file(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string rsp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    rsp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return rsp;
}

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

TEST(ToolsServeSmoke, ServesTelemetryUntilSigterm) {
  const std::string csv = write_kpi_csv();
  const std::string port_file = temp_path("port");
  const std::string log = temp_path("serve.log");
  std::remove(port_file.c_str());
  const std::vector<std::string> args = {
      FUNNEL_DETECT_CSV_PATH, csv,
      "--change-minute", "200",
      "--http-port", "auto",
      "--port-file", port_file,
      "--selfmon", "--selfmon-tick-ms", "25",
      "--serve", "--serve-seconds", "60"};
  const pid_t pid = spawn(args, log);
  ASSERT_GT(pid, 0);

  if (!funnel::obs::kEnabled) {
    // FUNNEL_OBS=OFF: the plane cannot start, the tool must exit 3 fast.
    const int status = await_exit(pid, 20000);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 3) << slurp(log);
    EXPECT_NE(slurp(log).find("compiled out"), std::string::npos)
        << slurp(log);
    return;
  }

  const int port = read_port_file(port_file, 20000);
  ASSERT_GT(port, 0) << "no port-file handshake; tool log:\n" << slurp(log);

  // /healthz: the live pipeline with selfmon attached reports healthy with
  // per-subsystem evidence.
  const std::string health = http_get(port, "/healthz");
  EXPECT_EQ(status_of(health), 200) << health;
  EXPECT_NE(health.find("healthy"), std::string::npos);
  EXPECT_NE(health.find("selfmon"), std::string::npos);

  // /metrics: Prometheus exposition with the pipeline's and the selfmon's
  // own series, plus the server accounting for itself.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("funnel_online_samples_ingested"), std::string::npos);
  EXPECT_NE(metrics.find("funnel_selfmon_ticks"), std::string::npos);
  EXPECT_NE(metrics.find("obs_server_requests"), std::string::npos);

  // /stats.json: the --stats-json snapshot, live.
  const std::string stats = http_get(port, "/stats.json");
  EXPECT_EQ(status_of(stats), 200);
  EXPECT_NE(stats.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(stats.find("tsdb.store.appends"), std::string::npos);

  // /tracez: the assessment published its trace dump at the quiesce point
  // before the serve loop.
  const std::string tracez = http_get(port, "/tracez");
  EXPECT_EQ(status_of(tracez), 200);
  EXPECT_NE(tracez.find("\"spans\":["), std::string::npos);

  // SIGTERM interrupts the hold loop; the tool still exits 0.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  const int status = await_exit(pid, 20000);
  ASSERT_TRUE(WIFEXITED(status)) << slurp(log);
  EXPECT_EQ(WEXITSTATUS(status), 0) << slurp(log);
  const std::string logged = slurp(log);
  EXPECT_NE(logged.find("# serving telemetry on 127.0.0.1:"),
            std::string::npos)
      << logged;
  std::remove(port_file.c_str());
}

TEST(ToolsServeSmoke, AlreadyBoundPortExits3WithDiagnostic) {
  // Occupy an ephemeral port ourselves; the tool must fail to bind it and
  // exit 3 with the address in the diagnostic (or the "compiled out" error
  // under FUNNEL_OBS=OFF — same exit code, same contract).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);

  const std::string csv = write_kpi_csv();
  const std::string log = temp_path("conflict.log");
  std::ostringstream port_text;
  port_text << port;
  const std::vector<std::string> args = {
      FUNNEL_DETECT_CSV_PATH, csv,
      "--change-minute", "200",
      "--http-port", port_text.str(),
      "--serve", "--serve-seconds", "30"};
  const pid_t pid = spawn(args, log);
  ASSERT_GT(pid, 0);
  const int status = await_exit(pid, 30000);
  ::close(fd);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 3) << slurp(log);
  const std::string logged = slurp(log);
  if (funnel::obs::kEnabled) {
    EXPECT_NE(logged.find(port_text.str()), std::string::npos) << logged;
    EXPECT_NE(logged.find("in use"), std::string::npos) << logged;
  } else {
    EXPECT_NE(logged.find("compiled out"), std::string::npos) << logged;
  }
}

}  // namespace
