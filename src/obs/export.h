// Exporters for telemetry snapshots (obs/registry.h).
//
// Both formats render a merged Snapshot, so they work identically for a
// live registry (`snapshot_json(reg.snapshot())`) and in the FUNNEL_OBS=OFF
// build (where the snapshot is empty and `"enabled":false`).
#pragma once

#include <string>

#include "obs/registry.h"

namespace funnel::obs {

/// Machine-readable dump: one JSON object with "enabled", "counters",
/// "gauges" and "histograms" members. Histograms carry count/sum/min/max/
/// mean plus per-bucket counts with their upper bounds ("+Inf" for the
/// overflow bucket). Keys are sorted (std::map order), so two dumps of the
/// same snapshot are byte-identical.
std::string snapshot_json(const Snapshot& snap);

/// Prometheus-style text exposition: counters and gauges as single series,
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`. Stat names are sanitized to the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: dots, dashes and any other non-conforming
/// byte (unicode included) become underscores, and a leading digit gains a
/// '_' prefix — the exposition always parses, whatever the stat was named.
std::string prometheus_text(const Snapshot& snap);

}  // namespace funnel::obs
