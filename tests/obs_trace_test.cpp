// Unit tests for the tracing subsystem (obs/trace.h): span-tree
// well-formedness, ambient-context nesting, cross-thread propagation
// through ThreadPool::parallel_for and tsdb::IngestDispatcher, ring-buffer
// drop accounting under overflow, DetachedSpan move/cross-thread-end
// semantics, and the Chrome trace-event JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tsdb/dispatch.h"

namespace funnel::obs {
namespace {

// Parents must exist (or be 0 = root) and following parent links must
// terminate — the tree property every exporter relies on.
void expect_well_formed(const TraceDump& dump) {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : dump.spans) {
    EXPECT_NE(s.span_id, 0u);
    EXPECT_TRUE(by_id.emplace(s.span_id, &s).second)
        << "duplicate span id " << s.span_id;
  }
  for (const SpanRecord& s : dump.spans) {
    if (s.parent_id != 0) {
      const auto it = by_id.find(s.parent_id);
      ASSERT_NE(it, by_id.end())
          << s.name << " has dangling parent " << s.parent_id;
      EXPECT_EQ(it->second->trace_id, s.trace_id)
          << s.name << " crosses traces";
    }
    // Walk to the root; a cycle would loop longer than the span count.
    std::uint64_t cur = s.parent_id;
    std::size_t hops = 0;
    while (cur != 0) {
      ASSERT_LE(++hops, dump.spans.size()) << "parent cycle at " << s.name;
      cur = by_id.at(cur)->parent_id;
    }
  }
}

TEST(ObsTrace, SpanTreeWellFormedWithAttrs) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  {
    Span root(&tracer, "root");
    root.attr("k.double", 1.5);
    root.attr("k.int", 42);
    root.attr("k.size", std::size_t{7});
    root.attr("k.str", "value");
    {
      Span child("child");  // ambient nesting, no tracer plumbed
      child.attr("c", 1);
      Span grandchild("grandchild");
      EXPECT_TRUE(grandchild.active());
    }
  }
  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), 3u);
  expect_well_formed(dump);
  EXPECT_EQ(dump.recorded, 3u);
  EXPECT_EQ(dump.dropped, 0u);

  // Closed innermost-first, but the dump is sorted by start time.
  EXPECT_STREQ(dump.spans[0].name, "root");
  EXPECT_STREQ(dump.spans[1].name, "child");
  EXPECT_STREQ(dump.spans[2].name, "grandchild");
  EXPECT_EQ(dump.spans[0].parent_id, 0u);
  EXPECT_EQ(dump.spans[1].parent_id, dump.spans[0].span_id);
  EXPECT_EQ(dump.spans[2].parent_id, dump.spans[1].span_id);
  for (const SpanRecord& s : dump.spans) {
    EXPECT_LE(s.start_ns, s.end_ns) << s.name;
  }

  const SpanRecord& root = dump.spans[0];
  ASSERT_NE(root.find_attr("k.double"), nullptr);
  EXPECT_DOUBLE_EQ(root.find_attr("k.double")->num, 1.5);
  ASSERT_NE(root.find_attr("k.int"), nullptr);
  EXPECT_EQ(root.find_attr("k.int")->inum, 42);
  ASSERT_NE(root.find_attr("k.size"), nullptr);
  EXPECT_EQ(root.find_attr("k.size")->inum, 7);
  ASSERT_NE(root.find_attr("k.str"), nullptr);
  EXPECT_EQ(root.find_attr("k.str")->str, "value");
  EXPECT_EQ(root.find_attr("missing"), nullptr);
}

TEST(ObsTrace, NullTracerAndNoAmbientAreInert) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  {
    Span null_span(static_cast<const Tracer*>(nullptr), "nothing");
    EXPECT_FALSE(null_span.active());
    null_span.attr("k", 1.0);  // must be a harmless no-op

    Span orphan("orphan");  // no ambient context open -> inactive
    EXPECT_FALSE(orphan.active());
    EXPECT_FALSE(current_context().active());
  }
  Tracer tracer;
  EXPECT_TRUE(tracer.collect().spans.empty());
}

TEST(ObsTrace, SeparateRootsSeparateTraces) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  { Span a(&tracer, "a"); }
  { Span b(&tracer, "b"); }
  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), 2u);
  EXPECT_EQ(dump.spans[0].parent_id, 0u);
  EXPECT_EQ(dump.spans[1].parent_id, 0u);
  EXPECT_NE(dump.spans[0].trace_id, dump.spans[1].trace_id);
}

TEST(ObsTrace, RingOverflowDropsOldestWithExactAccounting) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer(8);
  EXPECT_EQ(tracer.ring_capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    Span s(&tracer, "s");
    s.attr("i", i);
  }
  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), 8u);
  EXPECT_EQ(dump.recorded, 20u);
  EXPECT_EQ(dump.dropped, 12u);
  EXPECT_EQ(dump.threads, 1u);
  // The survivors are exactly the 8 newest, still in order.
  for (int k = 0; k < 8; ++k) {
    ASSERT_NE(dump.spans[k].find_attr("i"), nullptr);
    EXPECT_EQ(dump.spans[k].find_attr("i")->inum, 12 + k);
  }
}

TEST(ObsTrace, ScopedContextInstallsAndRestores) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  Span root(&tracer, "root");
  const SpanContext ctx = root.context();
  {
    const ScopedContext clear(SpanContext{});
    EXPECT_FALSE(current_context().active());
    {
      const ScopedContext reinstate(ctx);
      EXPECT_EQ(current_context().span_id, ctx.span_id);
    }
    EXPECT_FALSE(current_context().active());
  }
  EXPECT_EQ(current_context().span_id, ctx.span_id);
}

TEST(ObsTrace, ParallelForPropagatesContextAcrossWorkers) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  constexpr std::size_t kTasks = 64;
  std::uint64_t root_id = 0;
  std::uint64_t trace_id = 0;
  {
    ThreadPool pool(4);
    Span root(&tracer, "root");
    root_id = root.context().span_id;
    trace_id = root.context().trace_id;
    pool.parallel_for(0, kTasks, [&](std::size_t i, std::size_t) {
      Span task("task");
      task.attr("index", i);
    });
  }
  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), kTasks + 1);
  expect_well_formed(dump);
  std::set<std::int64_t> indices;
  for (const SpanRecord& s : dump.spans) {
    if (std::string_view(s.name) != "task") continue;
    EXPECT_EQ(s.parent_id, root_id);
    EXPECT_EQ(s.trace_id, trace_id);
    indices.insert(s.find_attr("index")->inum);
  }
  EXPECT_EQ(indices.size(), kTasks);  // every index ran exactly once
}

TEST(ObsTrace, IngestDispatcherPropagatesProducerContext) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  std::uint64_t root_id = 0;
  constexpr int kSamples = 16;
  {
    tsdb::IngestDispatcher dispatcher(
        64, tsdb::Backpressure::kBlock, [](const tsdb::Sample& s) {
          Span cb("callback");
          cb.attr("minute", s.t);
        });
    Span root(&tracer, "producer");
    root_id = root.context().span_id;
    for (int i = 0; i < kSamples; ++i) {
      dispatcher.submit({tsdb::MetricId{}, i, 1.0, {}, {}});
    }
    dispatcher.flush();  // happens-before for the dispatcher ring's writes
  }
  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), kSamples + 1u);
  expect_well_formed(dump);
  EXPECT_EQ(dump.threads, 2u);  // producer ring + dispatcher ring
  for (const SpanRecord& s : dump.spans) {
    if (std::string_view(s.name) != "callback") continue;
    EXPECT_EQ(s.parent_id, root_id);
  }
}

TEST(ObsTrace, DetachedSpanEndsOnAnotherThread) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  DetachedSpan watch(&tracer, "watch");
  EXPECT_TRUE(watch.active());
  // The root never installs itself: the opening thread's ambient context
  // stays empty, children must parent under it explicitly.
  EXPECT_FALSE(current_context().active());
  { Span child(watch.context(), "child"); }

  std::thread ender([w = std::move(watch)]() mutable {
    w.attr("ended.on", "other-thread");
    w.end();
  });
  ender.join();

  const TraceDump dump = tracer.collect();
  ASSERT_EQ(dump.spans.size(), 2u);
  expect_well_formed(dump);
  EXPECT_EQ(dump.threads, 2u);  // child on main, root in the ender's ring
  const auto root_it =
      std::find_if(dump.spans.begin(), dump.spans.end(),
                   [](const SpanRecord& s) {
                     return std::string_view(s.name) == "watch";
                   });
  ASSERT_NE(root_it, dump.spans.end());
  EXPECT_NE(root_it->find_attr("ended.on"), nullptr);
}

TEST(ObsTrace, DetachedSpanMoveDoesNotDoubleRecord) {
  if (!kEnabled) GTEST_SKIP() << "FUNNEL_OBS=OFF";
  Tracer tracer;
  {
    DetachedSpan a(&tracer, "a");
    DetachedSpan b(std::move(a));
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): by design
    EXPECT_TRUE(b.active());
    DetachedSpan c;
    c = std::move(b);
    EXPECT_TRUE(c.active());
    // a, b, c all destruct here; only c should record.
  }
  EXPECT_EQ(tracer.collect().spans.size(), 1u);
}

TEST(ObsTrace, ChromeTraceJsonShape) {
  TraceDump dump;
  SpanRecord s;
  s.trace_id = 1;
  s.span_id = 2;
  s.parent_id = 0;
  s.name = "funnel.assess";
  s.start_ns = 5000;
  s.end_ns = 12000;
  s.thread = 0;
  SpanAttr str_attr;
  str_attr.key = "kpi.metric";
  str_attr.kind = SpanAttr::Kind::kString;
  str_attr.str = "server:\"h\"/kpi";  // must be escaped
  s.attrs.push_back(str_attr);
  SpanAttr num_attr;
  num_attr.key = "sst.peak_score";
  num_attr.kind = SpanAttr::Kind::kDouble;
  num_attr.num = 0.75;
  s.attrs.push_back(num_attr);
  dump.spans.push_back(s);
  dump.recorded = 3;
  dump.dropped = 2;
  dump.threads = 1;

  const std::string json = chrome_trace_json(dump);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"funnel.assess\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kpi.metric\":\"server:\\\"h\\\"/kpi\""),
            std::string::npos);
  EXPECT_NE(json.find("\"sst.peak_score\":0.75"), std::string::npos);
  // Timestamps rebased to the earliest span, ns -> us.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);

  // Deterministic render.
  EXPECT_EQ(json, chrome_trace_json(dump));
}

TEST(ObsTrace, ChromeTraceJsonEmptyDump) {
  const std::string json = chrome_trace_json(TraceDump{});
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":0"), std::string::npos);
}

}  // namespace
}  // namespace funnel::obs
