// Tests for the embedded HTTP exposition server (obs/server.h) and the
// telemetry plane routing on top of it (obs/plane.h): request parsing and
// routing (GET/HEAD/405/404/400), load shedding, clean shutdown + restart,
// the port-conflict failure contract, and — the concurrency pin — the
// snapshot-while-writing hammer: worker threads serving /metrics-style
// Prometheus exports of a live Registry while producer threads drive the
// hot-path recorders. scripts/tsan_concurrency.sh runs this suite under
// ThreadSanitizer; a report here means a handler touched non-thread-safe
// state.
//
// Also the promtool-shaped exposition-format tests (docs/OBSERVABILITY.md):
// every /metrics line must match the Prometheus text grammar, histograms
// must carry cumulative buckets + the +Inf bucket + _sum/_count, and
// non-finite gauge values must render as NaN/+Inf/-Inf (not the JSON
// exporter's null) — the regression that motivated the prom_number_to
// split in obs/export.cpp.
//
// Under -DFUNNEL_OBS=OFF the server is a stub that never binds; only the
// stub contract is checked.
#include "obs/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/plane.h"
#include "obs/registry.h"

namespace funnel::obs {
namespace {

#define SKIP_IF_OBS_OFF()                                      \
  if (!kEnabled) GTEST_SKIP() << "obs compiled to no-ops "     \
                                 "(FUNNEL_OBS=OFF)"

/// Minimal raw HTTP client: one request, read to EOF (the server closes
/// every connection), return the full response bytes. Empty on any error.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_exchange(port,
                       "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int status_of(const std::string& response) {
  // "HTTP/1.1 NNN reason\r\n..."
  if (response.size() < 12 || response.compare(0, 5, "HTTP/") != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(ObsServer, OffBuildStubNeverBinds) {
  if (kEnabled) GTEST_SKIP() << "stub contract only applies to OFF builds";
  HttpServer server;
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  EXPECT_NE(server.error().find("compiled out"), std::string::npos);
}

TEST(ObsServer, RoutesGetHeadAndErrors) {
  SKIP_IF_OBS_OFF();
  HttpServer server;  // port 0 = ephemeral
  server.handle("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  server.handle("/echo", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.method + " " + req.path + " q=" + req.query;
    return r;
  });
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_get(server.port(), "/ping");
  EXPECT_EQ(status_of(ok), 200);
  EXPECT_EQ(body_of(ok), "pong\n");
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  // The query string is split off the routed path and handed to the handler.
  const std::string echo = http_get(server.port(), "/echo?x=1&y=2");
  EXPECT_EQ(status_of(echo), 200);
  EXPECT_EQ(body_of(echo), "GET /echo q=x=1&y=2");

  // HEAD routes like GET but suppresses the body.
  const std::string head = http_exchange(
      server.port(), "HEAD /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(status_of(head), 200);
  EXPECT_EQ(body_of(head), "");
  EXPECT_NE(head.find("Content-Length: 5"), std::string::npos);

  EXPECT_EQ(status_of(http_get(server.port(), "/nope")), 404);
  EXPECT_EQ(status_of(http_exchange(
                server.port(), "POST /ping HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(status_of(http_exchange(server.port(), "not http at all\r\n\r\n")),
            400);
  EXPECT_EQ(status_of(http_get(server.port(), "/boom")), 500);

  EXPECT_GE(server.requests_served(), 6u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsServer, OversizedRequestHeadIsRejected) {
  SKIP_IF_OBS_OFF();
  HttpServerOptions options;
  options.max_request_bytes = 256;
  HttpServer server(options);
  server.handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start()) << server.error();
  const std::string huge(1024, 'x');
  const std::string rsp = http_exchange(
      server.port(), "GET /ping HTTP/1.1\r\nX-Pad: " + huge + "\r\n\r\n");
  EXPECT_EQ(status_of(rsp), 400);
}

/// Like http_exchange but half-closes the write side after sending, so the
/// server sees EOF immediately instead of waiting out its read timeout —
/// needed to exercise the body-cut-short path without a 5 s stall.
std::string http_exchange_halfclose(std::uint16_t port,
                                    const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsServer, PostBodyRoundTripsThroughTheHandler) {
  SKIP_IF_OBS_OFF();
  HttpServer server;
  server.handle_post("/sink", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = "len=" + std::to_string(req.body.size()) + " body=" + req.body;
    return r;
  });
  ASSERT_TRUE(server.start()) << server.error();

  const std::string rsp = http_exchange(
      server.port(),
      "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: 11\r\n\r\n"
      "hello\nworld");
  EXPECT_EQ(status_of(rsp), 200);
  EXPECT_EQ(body_of(rsp), "len=11 body=hello\nworld");

  // An empty body is a valid body: Content-Length: 0 routes normally.
  const std::string empty = http_exchange(
      server.port(),
      "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(status_of(empty), 200);
  EXPECT_EQ(body_of(empty), "len=0 body=");

  // GET on a POST-only path: the path is known, so 405 rather than 404.
  EXPECT_EQ(status_of(http_get(server.port(), "/sink")), 405);
}

TEST(ObsServer, PostBodyErrorLadder411_413_400) {
  SKIP_IF_OBS_OFF();
  HttpServerOptions options;
  options.max_body_bytes = 64;
  HttpServer server(options);
  server.handle_post("/sink",
                     [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start()) << server.error();

  // POST without Content-Length: 411, never an implicit empty body.
  EXPECT_EQ(status_of(http_exchange(
                server.port(), "POST /sink HTTP/1.1\r\nHost: t\r\n\r\n")),
            411);

  // Declared length past max_body_bytes: 413 before reading the payload.
  EXPECT_EQ(status_of(http_exchange(
                server.port(),
                "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: 65"
                "\r\n\r\n")),
            413);

  // Malformed Content-Length value: 400.
  EXPECT_EQ(status_of(http_exchange(
                server.port(),
                "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: nope"
                "\r\n\r\nxx")),
            400);

  // Body cut short of the declared length (peer half-closes): 400.
  EXPECT_EQ(status_of(http_exchange_halfclose(
                server.port(),
                "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: 10"
                "\r\n\r\nabc")),
            400);

  // At the bound exactly: accepted.
  const std::string max_body(64, 'x');
  EXPECT_EQ(status_of(http_exchange(
                server.port(),
                "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: 64"
                "\r\n\r\n" +
                    max_body)),
            200);
}

TEST(ObsServer, PrefixRoutesLongestMatchAndExactWins) {
  SKIP_IF_OBS_OFF();
  HttpServer server;
  const auto tag = [](std::string name) {
    return [name](const HttpRequest& req) {
      HttpResponse r;
      r.body = name + ":" + req.path;
      return r;
    };
  };
  server.handle_prefix("/v1/", tag("root"));
  server.handle_prefix("/v1/report/", tag("report"));
  server.handle("/v1/report/exact", tag("exact"));
  server.handle_prefix("/v1/ingest/", tag("ingest"), /*post=*/true);
  ASSERT_TRUE(server.start()) << server.error();

  // Longest matching prefix wins over a shorter one.
  EXPECT_EQ(body_of(http_get(server.port(), "/v1/report/tenant-a")),
            "report:/v1/report/tenant-a");
  EXPECT_EQ(body_of(http_get(server.port(), "/v1/other")), "root:/v1/other");
  // Exact routes win over any prefix.
  EXPECT_EQ(body_of(http_get(server.port(), "/v1/report/exact")),
            "exact:/v1/report/exact");
  // Prefix routes are method-scoped: a POST prefix serves POST...
  const std::string post = http_exchange(
      server.port(),
      "POST /v1/ingest/tenant-a HTTP/1.1\r\nHost: t\r\nContent-Length: 2"
      "\r\n\r\nok");
  EXPECT_EQ(status_of(post), 200);
  EXPECT_EQ(body_of(post), "ingest:/v1/ingest/tenant-a");
  // ...while a GET to it falls back to the shorter GET prefix.
  EXPECT_EQ(body_of(http_get(server.port(), "/v1/ingest/tenant-a")),
            "root:/v1/ingest/tenant-a");
}

TEST(ObsServer, RestartsAfterStop) {
  SKIP_IF_OBS_OFF();
  HttpServer server;
  server.handle("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  ASSERT_TRUE(server.start()) << server.error();
  const std::uint16_t first_port = server.port();
  EXPECT_EQ(status_of(http_get(first_port, "/ping")), 200);
  server.stop();
  server.stop();  // idempotent
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(status_of(http_get(server.port(), "/ping")), 200);
  server.stop();
}

TEST(ObsServer, SecondBindOnSamePortFailsWithDiagnostic) {
  SKIP_IF_OBS_OFF();
  HttpServer first;
  ASSERT_TRUE(first.start()) << first.error();
  HttpServerOptions options;
  options.port = first.port();
  HttpServer second(options);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
  // The error carries the address so the CLI's exit-3 diagnostic names the
  // conflicting port.
  EXPECT_NE(second.error().find("bind"), std::string::npos) << second.error();
  std::ostringstream port_text;
  port_text << first.port();
  EXPECT_NE(second.error().find(port_text.str()), std::string::npos)
      << second.error();
  first.stop();
  // Once the first listener is gone the port is bindable again.
  ASSERT_TRUE(second.start()) << second.error();
  second.stop();
}

TEST(ObsServer, StartWhileRunningFails) {
  SKIP_IF_OBS_OFF();
  HttpServer server;
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_FALSE(server.start());
  EXPECT_TRUE(server.running());
  server.stop();
}

// The concurrency satellite: readers export the live registry through the
// server while producer threads hammer the hot-path recorders. Registry's
// contract says snapshot() is safe concurrent with recording; this pins it
// through the full /metrics path (socket -> worker -> snapshot -> export)
// under TSan.
TEST(ObsServer, MetricsExportRacesHotPathRecording) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.declare_counter("hammer.events");
  reg.declare_gauge("hammer.depth");
  HttpServerOptions options;
  options.num_workers = 3;
  HttpServer server(options);
  server.set_stats(&reg);
  server.handle("/metrics", [&reg](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = prometheus_text(reg.snapshot());
    return r;
  });
  ASSERT_TRUE(server.start()) << server.error();

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&reg, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        reg.add("hammer.events");
        reg.set("hammer.depth", double(t * 1000 + i % 97));
        reg.observe("hammer.lat_us", double(i % 500));
        ++i;
      }
    });
  }

  constexpr int kScrapes = 40;
  int ok_scrapes = 0;
  for (int i = 0; i < kScrapes; ++i) {
    const std::string rsp = http_get(server.port(), "/metrics");
    if (status_of(rsp) != 200) continue;
    ++ok_scrapes;
    EXPECT_NE(body_of(rsp).find("hammer_events"), std::string::npos);
  }
  stop.store(true);
  for (auto& p : producers) p.join();
  server.stop();
  EXPECT_EQ(ok_scrapes, kScrapes);

  // The server accounted for itself in the same registry.
  const Snapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("obs.server.requests"), std::uint64_t(kScrapes));
  EXPECT_GE(snap.histograms.at("obs.server.request_us").count,
            std::uint64_t(kScrapes));
}

// A full accept queue sheds with 503 instead of stalling the listener. One
// worker is parked inside a slow handler and the queue holds one more
// connection, so a burst of further requests must see shed responses while
// the pipeline (the slow handler) keeps running.
TEST(ObsServer, FullQueueSheds503) {
  SKIP_IF_OBS_OFF();
  HttpServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  HttpServer server(options);
  std::atomic<bool> release{false};
  server.handle("/slow", [&release](const HttpRequest&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return HttpResponse{};
  });
  ASSERT_TRUE(server.start()) << server.error();

  // Park the only worker.
  std::thread slow([&server] { http_get(server.port(), "/slow"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Burst: with the worker busy and capacity 1, at least one of these must
  // be shed from the accept thread.
  std::atomic<int> shed{0};
  std::vector<std::thread> burst;
  for (int i = 0; i < 6; ++i) {
    burst.emplace_back([&server, &shed] {
      if (status_of(http_get(server.port(), "/slow")) == 503) ++shed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  release.store(true);
  for (auto& b : burst) b.join();
  slow.join();
  EXPECT_GE(shed.load(), 1);
  server.stop();
}

// ---------------------------------------------------------------------------
// Prometheus exposition shape ("promtool-style"): the /metrics body must
// parse under the text-format grammar, scrape after scrape.

const std::string kNamePattern = "[a-zA-Z_:][a-zA-Z0-9_:]*";
const std::string kValuePattern =
    "(?:[-+]?[0-9]+(?:\\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|NaN|\\+Inf|-Inf)";

/// One exposition line: a `# TYPE name counter|gauge|histogram` comment, or
/// a sample `name value` / `name{le="bound"} value`.
bool line_is_valid(const std::string& line) {
  static const std::regex kType("# TYPE " + kNamePattern +
                                " (?:counter|gauge|histogram)");
  static const std::regex kLine(
      kNamePattern + "(?:_bucket\\{le=\"(?:" + kValuePattern +
      ")\"\\})? " + kValuePattern);
  if (!line.empty() && line[0] == '#') return std::regex_match(line, kType);
  return std::regex_match(line, kLine);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ObsPromExposition, EveryLineMatchesTheTextGrammar) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.add("funnel.online.samples_ingested", 12);
  reg.set("tsdb.store.queue_depth", 7.0);
  reg.set("weird-name.with dots&units(µs)", 1.5);  // sanitizer fodder
  for (const double v : {3.0, 12.0, 150.0, 1e9}) {
    reg.observe("funnel.assess.sst_us", v);
  }
  const std::string text = prometheus_text(reg.snapshot());
  const auto lines = split_lines(text);
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    EXPECT_TRUE(line_is_valid(line)) << "bad exposition line: " << line;
  }
}

TEST(ObsPromExposition, HistogramSeriesAreCumulativeWithSumCountInf) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  for (const double v : {3.0, 12.0, 150.0, 1e9}) reg.observe("h.us", v);
  const std::string text = prometheus_text(reg.snapshot());

  // _sum, _count and the +Inf bucket must all be present, and the +Inf
  // bucket must equal _count (cumulative histograms end at the total).
  EXPECT_NE(text.find("h_us_sum "), std::string::npos) << text;
  EXPECT_NE(text.find("h_us_count 4"), std::string::npos) << text;
  EXPECT_NE(text.find("h_us_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;

  // Bucket counts must be non-decreasing in ladder order.
  static const std::regex kBucket(
      "h_us_bucket\\{le=\"([^\"]+)\"\\} ([0-9]+)");
  std::uint64_t prev = 0;
  std::size_t buckets = 0;
  for (std::sregex_iterator it(text.begin(), text.end(), kBucket), end;
       it != end; ++it) {
    const std::uint64_t count = std::stoull((*it)[2].str());
    EXPECT_GE(count, prev) << "non-cumulative bucket in:\n" << text;
    prev = count;
    ++buckets;
  }
  EXPECT_GE(buckets, 3u);
}

TEST(ObsPromExposition, NonFiniteGaugesRenderPrometheusNotJsonNull) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.set("g.nan", std::numeric_limits<double>::quiet_NaN());
  reg.set("g.pos", std::numeric_limits<double>::infinity());
  reg.set("g.neg", -std::numeric_limits<double>::infinity());
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("g_nan NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pos +Inf"), std::string::npos) << text;
  EXPECT_NE(text.find("g_neg -Inf"), std::string::npos) << text;
  // A bare "null" (the JSON exporter's spelling) must never leak into the
  // exposition — that was the corruption this regression pins.
  EXPECT_EQ(text.find("null"), std::string::npos) << text;
  // The JSON exporter, by contrast, must keep using null (NaN is not JSON).
  const std::string json = snapshot_json(reg.snapshot());
  EXPECT_NE(json.find("\"g.nan\":null"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// TelemetryPlane routing: the endpoint set served over a real socket.

TEST(ObsPlane, ServesTheEndpointSet) {
  SKIP_IF_OBS_OFF();
  Registry reg;
  reg.add("funnel.online.samples_ingested", 3);
  PlaneOptions options;
  options.build_info = "obs_server_test";
  options.config_summary = "unit-test plane";
  TelemetryPlane plane(&reg, options);
  ASSERT_TRUE(plane.start()) << plane.error();
  const std::uint16_t port = plane.port();
  ASSERT_NE(port, 0);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(body_of(metrics).find("funnel_online_samples_ingested 3"),
            std::string::npos);

  const std::string stats = http_get(port, "/stats.json");
  EXPECT_EQ(status_of(stats), 200);
  EXPECT_NE(stats.find("application/json"), std::string::npos);
  EXPECT_NE(body_of(stats).find("\"enabled\":true"), std::string::npos);

  // Healthy with no subsystems registered: every check passes as "n/a".
  const std::string health = http_get(port, "/healthz");
  EXPECT_EQ(status_of(health), 200);
  EXPECT_EQ(body_of(health).substr(0, 8), "healthy\n");

  // Readiness flips with set_ready.
  EXPECT_EQ(status_of(http_get(port, "/readyz")), 503);
  plane.set_ready(true);
  const std::string ready = http_get(port, "/readyz");
  EXPECT_EQ(status_of(ready), 200);
  EXPECT_EQ(body_of(ready), "ready\n");

  const std::string statusz = http_get(port, "/statusz");
  EXPECT_EQ(status_of(statusz), 200);
  EXPECT_NE(body_of(statusz).find("obs_server_test"), std::string::npos);
  EXPECT_NE(body_of(statusz).find("unit-test plane"), std::string::npos);

  // /tracez before any publish: a valid empty dump.
  const std::string tracez = http_get(port, "/tracez");
  EXPECT_EQ(status_of(tracez), 200);
  EXPECT_NE(body_of(tracez).find("\"spans\":[]"), std::string::npos);

  // After publishing a dump the cached spans are served.
  TraceDump dump;
  SpanRecord span;
  span.name = "assess";
  span.trace_id = 1;
  span.span_id = 2;
  span.start_ns = 100000;
  span.end_ns = 150000;
  dump.spans.push_back(span);
  dump.recorded = 1;
  dump.threads = 1;
  plane.publish_trace(std::move(dump));
  const std::string tracez2 = http_get(port, "/tracez");
  EXPECT_EQ(status_of(tracez2), 200);
  EXPECT_NE(body_of(tracez2).find("\"name\":\"assess\""), std::string::npos);

  plane.stop();
  EXPECT_FALSE(plane.running());
}

}  // namespace
}  // namespace funnel::obs
