// Sharded in-memory metric store with push subscriptions.
//
// Stand-in for the paper's centralized Hadoop-based KPI database (§2.2):
// agents append 1-minute samples per MetricId; consumers either query ranges
// (batch assessment) or subscribe and get samples pushed as they arrive
// (online FUNNEL). Service KPIs can be stored directly or derived by
// aggregating instance KPIs.
//
// Scaling model: the series are hash-partitioned over N shards
// (StoreOptions::num_shards), each behind its own reader-writer lock, so
// concurrent writers on different shards never contend and readers never
// block each other. Subscriber notification can run synchronously inside
// append() (the legacy single-threaded mode) or asynchronously on a bounded
// MPSC queue drained by a dispatcher thread (StoreOptions::
// ingest_queue_capacity > 0) so a slow consumer can never stall a producing
// agent. Reports derived from this store are byte-identical for every shard
// count and for sync vs async dispatch (with a flush() barrier) — verified
// by tsdb_sharded_store_test.
//
// Thread-safety contract — the full repo-wide model lives in
// docs/CONCURRENCY.md ("Metric store"); summary:
//   * has/query/aggregate/metrics/metrics_of/metric_count/read/read_if are
//     internally locked and safe against concurrent append/create/insert.
//   * series() returns a reference whose *identity* is stable for the
//     store's lifetime (nodes are never erased or moved) but whose samples
//     are NOT safe to read while a writer appends to that same metric — use
//     read()/read_if/query for concurrent access, or quiesce writers first.
//   * append() auto-creates the series; create()/insert() throw on an
//     existing metric. This asymmetry is deliberate: append is the agent
//     hot path (millions of agents must not need a registration handshake),
//     while create/insert serve builder and backfill code where writing
//     over an existing series indicates a bug.
//   * subscribe/unsubscribe/subscriber_count are safe from any thread; in
//     async mode, once unsubscribe() returns the callback is guaranteed to
//     not be running and to never run again.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/error.h"
#include "obs/registry.h"
#include "tsdb/dispatch.h"
#include "tsdb/metric.h"
#include "tsdb/series.h"
#include "tsdb/shard.h"

namespace funnel::tsdb {

using SubscriptionId = std::uint64_t;

/// Construction knobs. The defaults reproduce the legacy store exactly: one
/// shard, synchronous subscriber dispatch on the producer thread.
struct StoreOptions {
  /// Hash-shard count (>= 1). More shards let concurrent writers and the
  /// parallel assessment engine scale past one lock; reports are
  /// byte-identical for every value.
  std::size_t num_shards = 1;

  /// 0 = synchronous dispatch (subscriber callbacks run inside append on
  /// the producer thread). > 0 = async: samples are queued (this capacity)
  /// and a dispatcher thread runs the callbacks; pair with flush() when a
  /// batch consumer needs every notification delivered.
  std::size_t ingest_queue_capacity = 0;

  /// Full-queue policy in async mode (ignored when synchronous).
  Backpressure backpressure = Backpressure::kBlock;
};

class MetricStore {
 public:
  MetricStore() : MetricStore(StoreOptions{}) {}
  explicit MetricStore(const StoreOptions& options);
  ~MetricStore();

  MetricStore(const MetricStore&) = delete;
  MetricStore& operator=(const MetricStore&) = delete;

  /// Create an empty series starting at `start`. Creating an existing metric
  /// throws (see the append/insert contract in the header comment).
  void create(const MetricId& id, MinuteTime start);

  bool has(const MetricId& id) const;

  /// Append a sample; creates the series (starting at t) when absent — the
  /// agent hot path never needs a registration handshake. Matching
  /// subscribers are notified synchronously (sync mode) or via the ingest
  /// queue (async mode) — the paper's sub-second push from database to
  /// FUNNEL.
  ///
  /// Dirty feeds are tolerated deterministically (TimeSeries::upsert_at):
  /// late samples fill their NaN hole, duplicates are ignored first-write-
  /// wins, samples before the series start are dropped — so any delivery
  /// order converges to the same series. Dropped samples are not notified;
  /// the rest are (telemetry: tsdb.store.late_fills / duplicates_ignored /
  /// too_old_dropped).
  void append(const MetricId& id, MinuteTime t, double value);

  /// Bulk-insert a prebuilt series (no subscriber notification) — the bulk
  /// backfill path scenario builders use. Throws when the metric exists.
  void insert(const MetricId& id, TimeSeries series);

  /// Series lookup; throws NotFound when absent. The reference stays valid
  /// for the store's lifetime, but reading it concurrently with appends to
  /// the same metric is a data race — quiescent callers only (batch
  /// pipelines after ingestion stops, or after flush() with no writers).
  /// Concurrent readers should use read()/read_if/query instead.
  const TimeSeries& series(const MetricId& id) const;

  /// Run `fn(series)` under the owning shard's reader lock — the safe way
  /// to take windowed views while producers keep appending. Returns fn's
  /// result; throws NotFound when the metric is absent. `fn` must not call
  /// back into this store (the shard lock is held; see docs/CONCURRENCY.md).
  template <typename Fn>
  auto read(const MetricId& id, Fn&& fn) const {
    const StoreShard& sh = shard(id);
    std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    const auto it = sh.series.find(id);
    if (it == sh.series.end()) {
      throw NotFound("no such metric: " + id.to_string());
    }
    return std::forward<Fn>(fn)(it->second);
  }

  /// read() for optional metrics: returns false (without invoking `fn`)
  /// when the metric is absent. Same reentrancy rule as read().
  template <typename Fn>
  bool read_if(const MetricId& id, Fn&& fn) const {
    const StoreShard& sh = shard(id);
    std::shared_lock<std::shared_mutex> lock(sh.data_mutex);
    const auto it = sh.series.find(id);
    if (it == sh.series.end()) return false;
    std::forward<Fn>(fn)(it->second);
    return true;
  }

  std::size_t metric_count() const;

  /// All metric ids, ordered.
  std::vector<MetricId> metrics() const;

  /// Metric ids of one entity kind whose entity name matches exactly,
  /// ordered.
  std::vector<MetricId> metrics_of(EntityKind kind,
                                   const std::string& entity) const;

  /// Copy of [t0, t1) for one metric (throws when not covered), taken under
  /// the shard lock.
  std::vector<double> query(const MetricId& id, MinuteTime t0,
                            MinuteTime t1) const;

  /// Pointwise mean across the given metrics over [t0, t1) (skips metrics /
  /// minutes that are missing). This is how a service KPI is derived from
  /// its instance KPIs and how DiD builds group averages. Each input series
  /// is copied under its shard lock (per-shard snapshot; the set is not a
  /// single cross-shard atomic view — see docs/CONCURRENCY.md).
  TimeSeries aggregate(std::span<const MetricId> ids, MinuteTime t0,
                       MinuteTime t1) const;

  /// Subscribe to samples of the given metrics. An empty filter subscribes
  /// to everything. Sync mode runs the callback inside append(); async mode
  /// runs it on the dispatcher thread, in per-metric enqueue order.
  using Callback =
      std::function<void(const MetricId&, MinuteTime, double)>;
  SubscriptionId subscribe(std::vector<MetricId> filter, Callback cb);

  /// Remove a subscription (unknown ids are ignored). Async mode: blocks
  /// until any in-flight delivery to this subscription has completed, so
  /// after return the callback never runs again (calling unsubscribe from
  /// inside the callback itself skips the wait and is allowed).
  void unsubscribe(SubscriptionId id);

  std::size_t subscriber_count() const {
    return sub_count_.load(std::memory_order_acquire);
  }

  /// Async mode: barrier — returns once every sample appended before the
  /// call has been delivered (or shed). Sync mode: no-op. Batch tests use
  /// this to make async runs byte-identical to synchronous ones.
  void flush();

  /// True when notification runs on the dispatcher thread.
  bool async() const { return dispatcher_ != nullptr; }

  std::size_t num_shards() const { return shards_.size(); }

  /// Samples shed by the kDropOldest policy so far (0 in sync/kBlock mode).
  std::uint64_t dropped_samples() const {
    return dispatcher_ ? dispatcher_->dropped() : 0;
  }

  /// Attach a telemetry registry (null detaches): append() counts samples
  /// (`tsdb.store.appends`), delivery counts callbacks
  /// (`tsdb.store.notifications`) and times the dispatch loop
  /// (`tsdb.store.dispatch_us`); async mode adds the queue-depth gauge,
  /// dispatch-lag histogram and dropped-samples counter (see dispatch.h).
  /// The registry must outlive the store.
  void set_stats(const obs::Registry* stats);

 private:
  std::size_t shard_index(const MetricId& id) const;
  StoreShard& shard(const MetricId& id) { return *shards_[shard_index(id)]; }
  const StoreShard& shard(const MetricId& id) const {
    return *shards_[shard_index(id)];
  }

  /// Snapshot the matching subscriptions for one sample and run their
  /// callbacks with no locks held. Runs on the producer thread (sync) or
  /// the dispatcher thread (async).
  void deliver(const Sample& s) const;

  std::vector<std::unique_ptr<StoreShard>> shards_;

  mutable std::mutex sub_index_mutex_;  ///< guards sub_index_ and next_sub_
  std::map<SubscriptionId, std::shared_ptr<Subscription>> sub_index_;
  SubscriptionId next_sub_ = 1;
  std::atomic<std::size_t> sub_count_{0};

  std::atomic<const obs::Registry*> stats_{nullptr};
  std::unique_ptr<IngestDispatcher> dispatcher_;  ///< null in sync mode
};

}  // namespace funnel::tsdb
