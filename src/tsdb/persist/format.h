// On-disk byte codec shared by the WAL, segment and checkpoint formats.
//
// Everything the persistent segment store writes is little-endian and
// CRC32C-guarded; the full byte-level contract lives in docs/STORAGE.md.
// The helpers here are deliberately tiny: fixed-width integers rendered by
// explicit byte shifts (so the code is endianness-independent even though
// the format is LE), doubles as raw IEEE-754 bit patterns (NaN samples are
// data — a recorded collection gap — and must round-trip bit-exactly), and
// length-prefixed strings. A ByteReader never throws: it carries a sticky
// `ok` flag so a truncated or corrupt buffer fails the whole parse instead
// of faulting mid-record — the property the WAL's torn-tail recovery and
// the checkpoint validator are built on.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/error.h"

namespace funnel::tsdb::persist {

/// Thrown when a persistent store directory cannot be opened, or holds
/// damage the WAL's torn-tail tolerance cannot absorb (corrupt checkpoint,
/// corrupt or missing segment). Callers treat it as fatal for that
/// data_dir — the funnel_detect_csv --data-dir contract maps it to exit 3.
class StorageError : public Error {
 public:
  explicit StorageError(const std::string& what) : Error(what) {}
};

/// CRC32C (Castagnoli), the checksum guarding every WAL record payload,
/// segment footer and checkpoint payload. Software table implementation —
/// the store is minutes-per-sample, not a block device.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

// --------------------------------------------------------------------------
// Writers: append little-endian values to a std::string buffer.

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Raw IEEE-754 bits: NaN payloads and signed zeros round-trip exactly.
inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// u16 length prefix + bytes. Metric entities/KPI names are short
/// identifiers; 64 KiB is far beyond any real name.
inline void put_str(std::string& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s.data(), s.size());
}

// --------------------------------------------------------------------------
// Reader: sticky-failure cursor over a byte buffer.

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }

  std::uint16_t get_u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t get_u64() { return get_le(8); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le(8)); }
  double get_f64() { return std::bit_cast<double>(get_le(8)); }

  std::string get_str() {
    const std::uint16_t n = get_u16();
    if (!need(n)) return {};
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }

  /// Fail the parse explicitly (e.g. an out-of-range enum value).
  void fail() { ok_ = false; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t get_le(std::size_t n) {
    if (!need(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    }
    p_ += n;
    return v;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace funnel::tsdb::persist
