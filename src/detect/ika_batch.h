// Cross-KPI batched IKA-SST: scores N same-geometry KPI streams in
// lockstep, fusing their implicit Hankel Gram applies into one
// KPI-interleaved strided pass (linalg::BatchHankelGram) per power sweep.
//
// A single KPI's Gram operator is tiny (omega x omega with omega = 9), so
// per-KPI applies are latency-bound pointer chasing; interleaving K lanes
// makes the innermost loop a unit-stride sweep across KPIs — the
// "several KPIs' mat-vecs as one cache-friendly pass" half of the SST hot
// path. Everything per-lane (Rayleigh-Ritz, orthonormalization, φ
// projections, Eq. 11 factor) runs the exact same inline helpers as
// IkaSst's fast path, so each lane's scores are bit-identical to a
// standalone IkaSst with warm_past=true fed the same windows
// (detect_sst_warmstart_test asserts this).
//
// Lanes keep independent warm state: a lane whose window is dirty scores
// NaN and keeps its bases untouched, exactly like a standalone scorer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "detect/ika_sst.h"

namespace funnel::detect {

class IkaSstBatch {
 public:
  /// `params.warm_past` is forced on — the batch scorer IS the fast path.
  explicit IkaSstBatch(std::size_t kpis, SstGeometry geometry = {},
                       IkaParams params = {});

  std::size_t kpis() const { return lanes_.size(); }
  const SstGeometry& geometry() const { return geo_; }
  std::size_t window_size() const { return geo_.window(); }

  /// Score the current window of every lane. `windows` is lane-major: lane
  /// k's window occupies [k*W, (k+1)*W) with W = geometry().window().
  /// `out` receives kpis() scores (NaN for dirty lanes).
  void score_all(std::span<const double> windows, std::span<double> out);

  /// Full clear of every lane's warm state (mirrors IkaSst::reset()).
  void reset();

 private:
  struct Lane {
    linalg::Matrix future_basis;
    linalg::Matrix past_basis;
    bool warm = false;
    int windows_since_restart = 0;
  };

  SstGeometry geo_;
  IkaParams params_;
  std::vector<Lane> lanes_;
};

}  // namespace funnel::detect
