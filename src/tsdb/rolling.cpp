#include "tsdb/rolling.h"

#include "common/error.h"
#include "common/stats.h"

namespace funnel::tsdb {

RollingWindow::RollingWindow(std::size_t capacity)
    : capacity_(capacity), buf_(capacity, 0.0) {
  FUNNEL_REQUIRE(capacity >= 1, "RollingWindow capacity must be positive");
}

void RollingWindow::push(double value) {
  if (size_ < capacity_) {
    buf_[(head_ + size_) % capacity_] = value;
    ++size_;
  } else {
    buf_[head_] = value;
    head_ = (head_ + 1) % capacity_;
  }
}

void RollingWindow::clear() {
  size_ = 0;
  head_ = 0;
}

std::vector<double> RollingWindow::snapshot() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buf_[(head_ + i) % capacity_]);
  }
  return out;
}

double RollingWindow::front() const {
  FUNNEL_REQUIRE(size_ > 0, "RollingWindow::front on empty window");
  return buf_[head_];
}

double RollingWindow::back() const {
  FUNNEL_REQUIRE(size_ > 0, "RollingWindow::back on empty window");
  return buf_[(head_ + size_ - 1) % capacity_];
}

double RollingWindow::mean() const {
  const auto snap = snapshot();
  return funnel::mean(snap);
}

double RollingWindow::median() const {
  const auto snap = snapshot();
  return funnel::median(snap);
}

double RollingWindow::mad() const {
  const auto snap = snapshot();
  return funnel::mad(snap);
}

}  // namespace funnel::tsdb
